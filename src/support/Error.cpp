//===- support/Error.cpp --------------------------------------*- C++ -*-===//

#include "support/Error.h"

#include <new>

using namespace deept;
using namespace deept::support;

const char *deept::support::errorCodeName(ErrorCode C) {
  switch (C) {
  case ErrorCode::Ok:
    return "ok";
  case ErrorCode::BadArgument:
    return "bad_argument";
  case ErrorCode::IoError:
    return "io_error";
  case ErrorCode::ModelNotFound:
    return "model_not_found";
  case ErrorCode::ModelCorrupt:
    return "model_corrupt";
  case ErrorCode::StoreCorrupt:
    return "store_corrupt";
  case ErrorCode::JobInvalid:
    return "job_invalid";
  case ErrorCode::DeadlineExceeded:
    return "deadline_exceeded";
  case ErrorCode::OutOfMemory:
    return "out_of_memory";
  case ErrorCode::UnsoundAbstraction:
    return "unsound_abstraction";
  case ErrorCode::FaultInjected:
    return "fault_injected";
  case ErrorCode::Internal:
    return "internal";
  case ErrorCode::LeaseLost:
    return "lease_lost";
  }
  return "internal";
}

int deept::support::exitCodeFor(ErrorCode C) {
  switch (C) {
  case ErrorCode::Ok:
    return 0;
  case ErrorCode::BadArgument:
  case ErrorCode::JobInvalid:
    return 2;
  case ErrorCode::IoError:
  case ErrorCode::ModelNotFound:
  case ErrorCode::ModelCorrupt:
  case ErrorCode::StoreCorrupt:
  case ErrorCode::LeaseLost:
    return 3;
  case ErrorCode::DeadlineExceeded:
    return 4;
  case ErrorCode::OutOfMemory:
  case ErrorCode::UnsoundAbstraction:
  case ErrorCode::FaultInjected:
  case ErrorCode::Internal:
    return 5;
  }
  return 5;
}

ErrorCode deept::support::codeOf(const std::exception &E) {
  if (const auto *Err = dynamic_cast<const Error *>(&E))
    return Err->code();
  if (dynamic_cast<const std::bad_alloc *>(&E))
    return ErrorCode::OutOfMemory;
  return ErrorCode::Internal;
}

bool deept::support::isTransientError(ErrorCode C) {
  switch (C) {
  case ErrorCode::IoError:
  case ErrorCode::OutOfMemory:
  case ErrorCode::FaultInjected:
    return true;
  default:
    return false;
  }
}
