//===- support/Prometheus.h - Metrics registry text exporter ---*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prometheus text exposition (format 0.0.4) of the support::Metrics
/// registry -- the export surface a serving daemon mounts at /metrics and
/// the `deept_cli metrics` command prints. Counters and gauges map
/// directly; histograms are rendered as Prometheus summaries with
/// quantile{0.5,0.9,0.99} series plus _sum/_count, and their min/max as
/// companion _min/_max gauges.
///
/// Instrument names use the registry's dotted taxonomy
/// ("zono.dot.fast.calls"); prometheusName() sanitizes them into legal
/// metric names ("deept_zono_dot_fast_calls"). Output is deterministic:
/// instruments are emitted in sorted name order, each exactly once.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_SUPPORT_PROMETHEUS_H
#define DEEPT_SUPPORT_PROMETHEUS_H

#include <string>

namespace deept {
namespace support {

class Metrics;
struct JsonValue;

/// Sanitizes a registry instrument name into a legal Prometheus metric
/// name: prefixes "deept_", maps every character outside [a-zA-Z0-9_:]
/// to '_'. The mapping is stable (equal inputs give equal outputs).
std::string prometheusName(const std::string &Name);

/// Escapes a label value for embedding between double quotes
/// (backslash, double quote, newline).
std::string prometheusEscapeLabel(const std::string &Value);

/// Renders a floating point sample value the way Prometheus expects
/// ("NaN", "+Inf", "-Inf" for non-finite values).
std::string prometheusNumber(double V);

/// The whole registry in Prometheus text exposition format.
std::string prometheusText(const Metrics &M);

/// Re-exports a deept_cli --stats-json artifact (or its bare "metrics"
/// registry object) as Prometheus text, so a recorded run can be scraped
/// offline. Returns false and fills \p Err when \p Doc does not look
/// like a stats document.
bool prometheusFromStatsJson(const JsonValue &Doc, std::string &Out,
                             std::string *Err = nullptr);

} // namespace support
} // namespace deept

#endif // DEEPT_SUPPORT_PROMETHEUS_H
