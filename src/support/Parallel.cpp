//===- support/Parallel.cpp -----------------------------------*- C++ -*-===//

#include "support/Parallel.h"

#include "support/Metrics.h"

#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

using namespace deept;
using namespace deept::support;

namespace {

thread_local bool InWorkerRegion = false;

size_t defaultThreadCount() {
  if (const char *Env = std::getenv("DEEPT_THREADS")) {
    size_t V = 0;
    std::string Err;
    if (!parseThreadCount(Env, V, &Err)) {
      std::fprintf(stderr, "error: DEEPT_THREADS %s\n", Err.c_str());
      std::exit(2);
    }
    return V;
  }
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

bool deept::support::parseThreadCount(const std::string &Text, size_t &Out,
                                      std::string *Err) {
  char *End = nullptr;
  errno = 0;
  long V = std::strtol(Text.c_str(), &End, 10);
  // strtol skips leading whitespace; a strict flag value must not.
  bool Parsed = !Text.empty() && !std::isspace(Text[0]) &&
                End == Text.c_str() + Text.size() && errno != ERANGE;
  if (!Parsed || V < 1) {
    if (Err)
      *Err = "must be a positive integer, got '" + Text + "'";
    return false;
  }
  Out = static_cast<size_t>(V);
  return true;
}

struct ThreadPool::Impl {
  /// One parallel dispatch. Workers claim chunk indices from Next; Done
  /// counts finished chunks; Active counts threads still inside the
  /// chunk loop (the job may not be destroyed while Active > 0).
  struct Job {
    size_t NumChunks = 0;
    void (*Fn)(void *, size_t) = nullptr;
    void *Ctx = nullptr;
    std::atomic<size_t> Next{0};
    std::atomic<size_t> Done{0};
    std::atomic<size_t> Active{0};
  };

  std::mutex Mu;
  std::condition_variable WorkCv; // workers wait for a new job generation
  std::condition_variable DoneCv; // the caller waits for job completion
  std::vector<std::thread> Workers;
  Job *Current = nullptr;
  uint64_t JobGen = 0;
  size_t Threads = defaultThreadCount();
  bool Started = false;
  bool Stop = false;

  Counter &Tasks = Metrics::global().counter("pool.tasks");
  Counter &IdleNs = Metrics::global().counter("pool.steal_idle_ns");
  // The per-ISA gemm.tile_ms.<isa> histogram is pre-registered by the
  // kernel dispatcher (tensor/Kernels.cpp) when a table is selected; the
  // support layer cannot name it without depending on tensor.

  void runChunks(Job *J) {
    InWorkerRegion = true;
    size_t C;
    while ((C = J->Next.fetch_add(1, std::memory_order_relaxed)) <
           J->NumChunks) {
      J->Fn(J->Ctx, C);
      J->Done.fetch_add(1, std::memory_order_release);
    }
    InWorkerRegion = false;
  }

  void workerLoop() {
    uint64_t Seen = 0;
    while (true) {
      Job *J = nullptr;
      {
        std::unique_lock<std::mutex> L(Mu);
        WorkCv.wait(L, [&] { return Stop || JobGen != Seen; });
        if (Stop)
          return;
        Seen = JobGen;
        J = Current;
        if (J)
          J->Active.fetch_add(1, std::memory_order_relaxed);
      }
      if (!J)
        continue;
      runChunks(J);
      {
        std::lock_guard<std::mutex> L(Mu);
        J->Active.fetch_sub(1, std::memory_order_relaxed);
        DoneCv.notify_all();
      }
    }
  }

  void startLocked() {
    if (Started)
      return;
    Started = true;
    for (size_t I = 1; I < Threads; ++I)
      Workers.emplace_back([this] { workerLoop(); });
  }

  void shutdown() {
    {
      std::lock_guard<std::mutex> L(Mu);
      Stop = true;
      WorkCv.notify_all();
    }
    for (std::thread &W : Workers)
      W.join();
    Workers.clear();
    Started = false;
    Stop = false;
  }
};

ThreadPool &ThreadPool::global() {
  static ThreadPool Pool;
  return Pool;
}

ThreadPool::ThreadPool() : I(new Impl) {}

ThreadPool::~ThreadPool() {
  I->shutdown();
  delete I;
}

size_t ThreadPool::threadCount() const {
  std::lock_guard<std::mutex> L(I->Mu);
  return I->Threads;
}

void ThreadPool::setThreadCount(size_t N) {
  N = std::max<size_t>(1, N);
  {
    std::lock_guard<std::mutex> L(I->Mu);
    if (I->Threads == N)
      return;
  }
  I->shutdown();
  std::lock_guard<std::mutex> L(I->Mu);
  I->Threads = N;
}

bool ThreadPool::inParallelRegion() { return InWorkerRegion; }

void ThreadPool::run(size_t NumChunks, void (*Fn)(void *, size_t),
                     void *Ctx) {
  if (NumChunks == 0)
    return;
  Impl::Job J;
  J.NumChunks = NumChunks;
  J.Fn = Fn;
  J.Ctx = Ctx;
  I->Tasks.add(static_cast<double>(NumChunks));
  {
    std::lock_guard<std::mutex> L(I->Mu);
    I->startLocked();
    ++I->JobGen;
    I->Current = &J;
    I->WorkCv.notify_all();
  }
  I->runChunks(&J);
  // The caller ran out of chunks; time spent waiting for workers to drain
  // theirs is the load-imbalance tail the pool.steal_idle_ns counter
  // tracks.
  uint64_t T0 = nowNs();
  {
    std::unique_lock<std::mutex> L(I->Mu);
    I->DoneCv.wait(L, [&] {
      return J.Done.load(std::memory_order_acquire) == NumChunks &&
             J.Active.load(std::memory_order_relaxed) == 0;
    });
    I->Current = nullptr;
  }
  I->IdleNs.add(static_cast<double>(nowNs() - T0));
}
