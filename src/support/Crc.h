//===- support/Crc.h - CRC-32 checksum ------------------------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte
/// stream, computed incrementally. Shared by the `.dptm` serializer, the
/// certificate producer (verify/Certificate) and the independent
/// certificate checker (src/check) -- the producer/checker pair must
/// agree on the checksum without sharing any verifier code, so the
/// implementation lives here in support.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_SUPPORT_CRC_H
#define DEEPT_SUPPORT_CRC_H

#include <cstddef>
#include <cstdint>

namespace deept {
namespace support {

/// Incremental CRC-32: update() over any number of chunks, value() at any
/// point (it does not reset the state).
class Crc32 {
public:
  void update(const void *Data, size_t N) {
    static const uint32_t *Table = table();
    const auto *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I < N; ++I)
      State = Table[(State ^ P[I]) & 0xFF] ^ (State >> 8);
  }
  uint32_t value() const { return State ^ 0xFFFFFFFFu; }

private:
  static const uint32_t *table() {
    static uint32_t T[256];
    static bool Done = [] {
      for (uint32_t I = 0; I < 256; ++I) {
        uint32_t C = I;
        for (int K = 0; K < 8; ++K)
          C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
        T[I] = C;
      }
      return true;
    }();
    (void)Done;
    return T;
  }
  uint32_t State = 0xFFFFFFFFu;
};

/// One-shot CRC-32 of a buffer.
inline uint32_t crc32(const void *Data, size_t N) {
  Crc32 C;
  C.update(Data, N);
  return C.value();
}

} // namespace support
} // namespace deept

#endif // DEEPT_SUPPORT_CRC_H
