//===- support/ArgParse.h - Minimal command line parsing -------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small `--flag value` / `--switch` command line parser for the tools
/// and examples. Flags may appear in any order; positional arguments are
/// collected separately.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_SUPPORT_ARGPARSE_H
#define DEEPT_SUPPORT_ARGPARSE_H

#include <map>
#include <string>
#include <vector>

namespace deept {
namespace support {

/// Parsed command line: `prog pos0 --key value --switch pos1`.
class ArgParse {
public:
  /// Parses argv[1..argc). \p Switches lists flags that take no value;
  /// every other `--flag` consumes the following token as its value.
  ArgParse(int Argc, const char *const *Argv,
           const std::vector<std::string> &Switches = {});

  /// True when `--name` appeared (as a switch or with a value).
  bool has(const std::string &Name) const;

  /// Value of `--name`, or \p Default when absent.
  std::string get(const std::string &Name,
                  const std::string &Default = "") const;
  long getInt(const std::string &Name, long Default) const;
  double getDouble(const std::string &Name, double Default) const;

  /// Strict integer parse of `--name`: the whole value must be a decimal
  /// integer (optionally signed). Returns true leaving \p Out untouched
  /// when the flag is absent, true with \p Out set when well formed, and
  /// false (filling \p Err with a "--name expects an integer" message)
  /// when the flag is present but empty or malformed. Flags whose value
  /// feeds resource configuration (thread counts, deadlines) use this so
  /// typos fail loudly instead of silently becoming a default.
  bool getIntStrict(const std::string &Name, long &Out,
                    std::string *Err = nullptr) const;

  /// Positional arguments in order.
  const std::vector<std::string> &positional() const { return Positional; }

  /// Flags that were provided but never queried (typo detection).
  std::vector<std::string>
  unknownFlags(const std::vector<std::string> &Known) const;

private:
  std::map<std::string, std::string> Values;
  std::vector<std::string> Positional;
};

} // namespace support
} // namespace deept

#endif // DEEPT_SUPPORT_ARGPARSE_H
