//===- support/Table.h - Plain-text table rendering ------------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny column-aligned plain-text table printer used by the benchmark
/// binaries to emit rows in the same layout as the paper's tables.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_SUPPORT_TABLE_H
#define DEEPT_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace deept {
namespace support {

/// Formats a double the way the paper's tables do: small magnitudes are
/// rendered in scientific notation ("6.4e-3"), everything else with three
/// decimals.
std::string formatRadius(double Value);

/// Formats a double with a fixed number of decimals.
std::string formatFixed(double Value, int Decimals);

/// Column-aligned text table builder.
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Appends a data row; must have the same arity as the header.
  void addRow(std::vector<std::string> Row);

  /// Renders the table (header, separator, rows) to a string.
  std::string render() const;

  /// Renders and writes the table to stdout.
  void print() const;

  /// Header row followed by the data rows, as passed in (used by the
  /// bench harnesses to re-emit the table machine-readably).
  const std::vector<std::vector<std::string>> &rows() const { return Rows; }

private:
  std::vector<std::vector<std::string>> Rows;
};

} // namespace support
} // namespace deept

#endif // DEEPT_SUPPORT_TABLE_H
