//===- support/Fault.h - Deterministic fault injection ---------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for the robustness layer. Recovery code
/// that only runs when a disk dies or an allocation fails is recovery code
/// that has never run; this framework lets tests (and operators doing
/// drills) trigger those paths reproducibly.
///
/// Call sites name an injection point:
///
///   DEEPT_FAULT_POINT("serialize.read");          // may throw / sleep
///   if (DEEPT_FAULT_IO_FAIL("store.write")) ...   // simulate short IO
///   DEEPT_FAULT_CORRUPT("verify.propagate", Ptr, N); // poison doubles
///
/// Sites compile to no-ops (zero code, zero branches) unless the build
/// enables DEEPT_FAULT_INJECT (a CMake option, ON by default -- every
/// site lives on a cold path, so an armed-check costs one relaxed atomic
/// load; production builds that want provably-zero overhead configure
/// with -DDEEPT_FAULT_INJECT=OFF).
///
/// Faults are armed by a spec string -- programmatically via fault::arm()
/// or from the DEEPT_FAULTS environment variable, read once on first site
/// hit:
///
///   DEEPT_FAULTS=site:count:kind[:param][,site:count:kind...]
///
/// `count` is the 1-based hit index of `site` at which the fault fires
/// (0 = every hit). Kinds:
///   alloc  -- throw std::bad_alloc at a DEEPT_FAULT_POINT
///   fail   -- throw support::Error(FaultInjected) at a DEEPT_FAULT_POINT
///   delay  -- sleep `param` milliseconds (default 10) at a point
///   short  -- make DEEPT_FAULT_IO_FAIL return true (a short read/write)
///   nan    -- overwrite the middle element at a DEEPT_FAULT_CORRUPT site
///   inf    -- same with +infinity
///
/// Example: `DEEPT_FAULTS=serialize.read:2:short,verify.propagate:1:nan`
/// fails the second payload read and poisons the first propagation.
///
/// Coordination drills use the sites `lease.heartbeat` (kind `delay`
/// stalls renewals until the lease goes stale and is reclaimed) and
/// `worker.crash` (kind `fail` kills a worker between finishing a range
/// and publishing its done marker, leaving a held lease behind), plus
/// `sched.execute` (kind `fail`/`alloc` drives the transient-retry path,
/// kind `delay` stretches jobs so chaos drills can interleave).
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_SUPPORT_FAULT_H
#define DEEPT_SUPPORT_FAULT_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace deept {
namespace support {
namespace fault {

/// Parses and arms \p Spec (replacing any previous arming). Returns false
/// and fills \p Err on a malformed spec. An empty spec disarms.
bool arm(const std::string &Spec, std::string *Err = nullptr);

/// Removes all armed faults and resets hit counters.
void disarm();

/// True when at least one fault spec is armed.
bool armed();

/// Total faults fired since the last disarm (also mirrored into the
/// metrics registry as the `fault.injected` counter).
uint64_t injectedCount();

/// Site hooks -- call through the macros below, not directly.
void point(const char *Site);
bool ioFail(const char *Site);
void corrupt(const char *Site, double *Data, size_t N);

} // namespace fault
} // namespace support
} // namespace deept

#ifdef DEEPT_FAULT_INJECT
/// May throw std::bad_alloc / support::Error or sleep, per the armed spec.
#define DEEPT_FAULT_POINT(Site) ::deept::support::fault::point(Site)
/// True when the armed spec says this IO operation should fail short.
#define DEEPT_FAULT_IO_FAIL(Site) ::deept::support::fault::ioFail(Site)
/// Overwrites an element of [Data, Data+N) with NaN/Inf per the spec.
#define DEEPT_FAULT_CORRUPT(Site, Data, N)                                   \
  ::deept::support::fault::corrupt(Site, Data, N)
#else
#define DEEPT_FAULT_POINT(Site) ((void)0)
#define DEEPT_FAULT_IO_FAIL(Site) false
#define DEEPT_FAULT_CORRUPT(Site, Data, N) ((void)0)
#endif

#endif // DEEPT_SUPPORT_FAULT_H
