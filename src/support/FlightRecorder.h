//===- support/FlightRecorder.h - Per-job event ring buffer ----*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded ring buffer of structured events recorded during one
/// certification job -- the "black box" the scheduler dumps as a JSON
/// artifact when a job errors, hits its deadline, or trips an
/// unsound-abstraction guard, and silently discards when the job
/// succeeds. Because the buffer is bounded (drop-oldest, default 256
/// events) and recording is a couple of string copies behind a mutex, it
/// is cheap enough to leave on for every scheduled job.
///
/// Events carry a monotonic timestamp relative to the recorder's
/// creation, a short machine-readable kind ("checkpoint", "degrade",
/// "deadline", "warm_start", "fault", "cancel", ...), a free-form detail
/// string, and up to three numeric payload slots whose meaning is
/// per-kind (documented in DESIGN.md "Precision observability").
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_SUPPORT_FLIGHTRECORDER_H
#define DEEPT_SUPPORT_FLIGHTRECORDER_H

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

namespace deept {
namespace support {

class FlightRecorder {
public:
  struct Event {
    double TMs = 0.0;   ///< Milliseconds since recorder creation.
    std::string Kind;   ///< Machine-readable event class.
    std::string Detail; ///< Free-form context (site, stage, message).
    double A = 0.0;     ///< Per-kind numeric payload slots.
    double B = 0.0;
    double C = 0.0;
  };

  explicit FlightRecorder(size_t Capacity = 256);

  /// Appends an event, dropping the oldest when full. Thread-safe.
  void record(const std::string &Kind, const std::string &Detail,
              double A = 0.0, double B = 0.0, double C = 0.0);

  size_t size() const;
  uint64_t droppedCount() const;
  size_t capacity() const { return Cap; }

  /// The buffer as one JSON object:
  ///   {"job":"<key>","capacity":N,"dropped":N,
  ///    "events":[{"t_ms":..,"kind":"..","detail":"..",
  ///               "a":..,"b":..,"c":..},...]}
  std::string toJson(const std::string &JobKey) const;

  /// Atomically writes toJson() to \p Path; false + \p Err on failure.
  bool dumpJson(const std::string &Path, const std::string &JobKey,
                std::string *Err = nullptr) const;

private:
  double nowMs() const;

  mutable std::mutex Mu;
  size_t Cap;
  std::deque<Event> Events;
  uint64_t Dropped = 0;
  std::chrono::steady_clock::time_point Start;
};

} // namespace support
} // namespace deept

#endif // DEEPT_SUPPORT_FLIGHTRECORDER_H
