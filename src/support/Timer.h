//===- support/Timer.h - Wall clock timing ---------------------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal wall-clock timer used by the benchmark harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_SUPPORT_TIMER_H
#define DEEPT_SUPPORT_TIMER_H

#include <chrono>

namespace deept {
namespace support {

/// Wall-clock stopwatch. Starts on construction.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Returns seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Accumulates the elapsed seconds of its scope into a double on exit:
///
///   double Sec = 0.0;
///   { ScopedAccum A(Sec); work(); }   // Sec += wall-clock of work()
///
/// Replaces the repeated `Timer T; ...; Acc += T.seconds()` pattern in the
/// bench harnesses and the CLI.
class ScopedAccum {
public:
  explicit ScopedAccum(double &Acc) : Acc(Acc) {}
  ~ScopedAccum() { Acc += T.seconds(); }

  ScopedAccum(const ScopedAccum &) = delete;
  ScopedAccum &operator=(const ScopedAccum &) = delete;

private:
  Timer T;
  double &Acc;
};

} // namespace support
} // namespace deept

#endif // DEEPT_SUPPORT_TIMER_H
