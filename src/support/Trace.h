//===- support/Trace.h - Scoped spans and Chrome trace export --*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tracing half of the observability layer: RAII spans that record
/// nested wall-clock intervals into a process-wide log, exportable as
/// Chrome `trace_event` JSON (open in chrome://tracing or
/// https://ui.perfetto.dev) or as a per-span self-time summary table.
///
/// Tracing is compiled in everywhere but disabled by default; a disabled
/// TraceSpan costs one relaxed atomic load and two branches, so the hot
/// path can stay instrumented permanently (measured by the
/// BM_TraceSpanDisabled micro benchmark). Recording is thread-safe; span
/// begin/end bookkeeping is thread-local, so nesting and self-time are
/// exact per thread.
///
/// Usage:
///
///   support::Trace::setEnabled(true);
///   {
///     DEEPT_TRACE_SPAN("deept.propagate");     // or: TraceSpan S("...");
///     ...
///   }
///   support::Trace::writeChromeJson("run.trace.json");
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_SUPPORT_TRACE_H
#define DEEPT_SUPPORT_TRACE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace deept {
namespace support {

/// Process-wide trace log. All members are static: spans from any thread
/// accumulate into one log so a whole verification run exports as a
/// single timeline.
class Trace {
public:
  /// Whether spans currently record. Reading this is the only cost a
  /// disabled span pays.
  static bool enabled() { return Enabled.load(std::memory_order_relaxed); }
  static void setEnabled(bool On) {
    Enabled.store(On, std::memory_order_relaxed);
  }

  /// Drops all recorded events.
  static void clear();

  /// Number of completed spans recorded so far.
  static size_t eventCount();

  /// The full log in Chrome trace_event JSON ("X" complete events,
  /// microsecond timestamps). Loads directly in chrome://tracing and
  /// Perfetto.
  static std::string toChromeJson();

  /// Writes toChromeJson() to \p Path; false on I/O failure.
  static bool writeChromeJson(const std::string &Path);

  /// A per-span-name table (count, total, self, average) sorted by self
  /// time; "self" excludes time spent in child spans.
  static std::string selfTimeSummary();

private:
  friend class TraceSpan;
  static void record(std::string Name, uint64_t StartNs, uint64_t DurNs,
                     uint64_t SelfNs, uint32_t Depth);
  static std::atomic<bool> Enabled;
};

/// RAII span: records [construction, destruction) under \p Name when
/// tracing is enabled. Spans nest lexically (strict LIFO per thread).
class TraceSpan {
public:
  explicit TraceSpan(const char *Name) {
    if (Trace::enabled())
      begin(Name);
  }

  /// Span with an indexed name, e.g. ("deept.layer", 2) -> "deept.layer[2]".
  /// The formatting only happens when tracing is enabled.
  TraceSpan(const char *Name, size_t Index) {
    if (Trace::enabled())
      begin(std::string(Name) + "[" + std::to_string(Index) + "]");
  }

  /// Span with a string tag, e.g. ("sched.job", Key) -> "sched.job[0x1a..]";
  /// lets offline tooling join trace spans against batch JSONL rows and
  /// flight-recorder artifacts by job key.
  TraceSpan(const char *Name, const std::string &Tag) {
    if (Trace::enabled())
      begin(std::string(Name) + "[" + Tag + "]");
  }

  ~TraceSpan() {
    if (Active)
      end();
  }

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

private:
  void begin(std::string Name);
  void end();
  bool Active = false;
};

} // namespace support
} // namespace deept

#define DEEPT_TRACE_CONCAT_IMPL(A, B) A##B
#define DEEPT_TRACE_CONCAT(A, B) DEEPT_TRACE_CONCAT_IMPL(A, B)

/// Declares an anonymous scoped span; arguments as for TraceSpan.
#define DEEPT_TRACE_SPAN(...)                                                \
  ::deept::support::TraceSpan DEEPT_TRACE_CONCAT(TraceSpanAtLine,            \
                                                 __LINE__)(__VA_ARGS__)

#endif // DEEPT_SUPPORT_TRACE_H
