//===- support/Io.h - Crash-safe file IO helpers ---------------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The small set of POSIX file helpers the robustness layer is built on:
///
///  * atomicWriteFile -- write-temp-then-rename, so readers never observe
///    a half-written file (the model serializer uses it; a crash mid-save
///    leaves the previous file intact).
///  * AppendFile -- an append-only record writer where each record is one
///    write(2) call (O_APPEND keeps concurrent appends unsheared) with an
///    optional fsync per record; the scheduler's JSONL store is built on
///    it.
///  * truncateFile -- drop a torn trailing record during store recovery.
///
/// All helpers report failure through support::Error out-params rather
/// than throwing, since callers usually have a graceful degradation path.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_SUPPORT_IO_H
#define DEEPT_SUPPORT_IO_H

#include "support/Error.h"

#include <cstdint>
#include <string>

namespace deept {
namespace support {

/// Writes \p Data to \p Path atomically: the bytes go to "Path.tmp.<pid>"
/// first, are fsync'd, and the temp file is rename(2)d over Path. On any
/// failure the temp file is removed, \p Err (optional) is filled, and
/// Path is left untouched.
bool atomicWriteFile(const std::string &Path, const std::string &Data,
                     Error *Err = nullptr);

/// Creates \p Path with \p Data only if it does not already exist
/// (O_CREAT|O_EXCL, fsync'd). The exclusive create is the mutual-exclusion
/// primitive of the coordination layer: exactly one of N racing workers
/// wins a lease file. Returns false with \p Exists set when Path already
/// existed (not an error), false with \p Err filled on real IO failure.
bool createFileExclusive(const std::string &Path, const std::string &Data,
                         bool &Exists, Error *Err = nullptr);

/// rename(2) wrapper. Atomic on one filesystem; fails (ENOENT) when
/// \p From is already gone, which reclaim uses to pick a single winner.
bool renameFile(const std::string &From, const std::string &To,
                Error *Err = nullptr);

/// unlink(2) wrapper; missing files are reported as failure with ENOENT.
bool removeFile(const std::string &Path, Error *Err = nullptr);

/// Reads the whole of \p Path into \p Out.
bool readFileToString(const std::string &Path, std::string &Out,
                      Error *Err = nullptr);

/// True when \p Path can be stat'd.
bool fileExists(const std::string &Path);

/// An append-only file where each append is a single write(2). Move-only.
class AppendFile {
public:
  AppendFile() = default;
  AppendFile(const AppendFile &) = delete;
  AppendFile &operator=(const AppendFile &) = delete;
  ~AppendFile() { close(); }

  /// Opens (creating if needed) \p Path for appending.
  bool open(const std::string &Path, Error *Err = nullptr);
  bool isOpen() const { return Fd >= 0; }
  void close();

  /// Appends \p Record in one write call, retrying on EINTR and resuming
  /// after short writes. With \p Fsync the record is durable on return.
  bool append(const std::string &Record, bool Fsync, Error *Err = nullptr);

private:
  int Fd = -1;
  std::string Path;
};

/// Truncates \p Path to \p Size bytes.
bool truncateFile(const std::string &Path, uint64_t Size,
                  Error *Err = nullptr);

/// Size of \p Path in bytes; false when it cannot be stat'd.
bool fileSize(const std::string &Path, uint64_t &Size);

} // namespace support
} // namespace deept

#endif // DEEPT_SUPPORT_IO_H
