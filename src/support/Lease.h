//===- support/Lease.h - Lease files for multi-worker sharding -*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// File-based leases for the coordination layer: N independent worker
/// processes drain one batch by sharding jobs into digest ranges, and each
/// range is guarded by a lease file in a shared directory. The protocol
/// uses only three filesystem primitives, all atomic on a local FS:
///
///  * claim    -- O_CREAT|O_EXCL create of `range-<i>.lease`; exactly one
///                of N racing workers wins.
///  * renew    -- temp-write + rename(2) rewrite with a fresh heartbeat
///                timestamp, after re-reading the file and verifying the
///                caller still owns it. A holder whose lease was reclaimed
///                discovers the loss here and must stop writing its shard.
///  * reclaim  -- when a lease's heartbeat is older than the staleness
///                bound, any worker may rename(2) the lease file away to a
///                per-reclaimer name. rename fails once the source is gone,
///                so exactly one reclaimer wins; the winner removes the
///                renamed file and the range becomes claimable again.
///
/// Safety does not hinge on the staleness bound being conservative: a
/// "zombie" holder that resumes after reclaim can at worst append a few
/// more records to its shard before its next renewal detects the loss, and
/// shard records are deterministic (bit-identical margins at any worker
/// count), so such records are exact duplicates that the merge step
/// collapses. See DESIGN.md "Coordination layer".
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_SUPPORT_LEASE_H
#define DEEPT_SUPPORT_LEASE_H

#include "support/Error.h"

#include <cstddef>
#include <cstdint>
#include <string>

namespace deept {
namespace support {

/// One range's lease document (the JSON object stored in the lease file).
struct Lease {
  /// Digest range this lease guards, in [0, Ranges).
  size_t Range = 0;
  /// Total number of ranges the batch was sharded into.
  size_t Ranges = 0;
  /// Worker identity, unique per worker invocation.
  std::string Owner;
  /// Holder's pid (diagnostic only; ownership checks use Owner+CreatedMs).
  int64_t Pid = 0;
  /// Epoch milliseconds when the lease was claimed.
  int64_t CreatedMs = 0;
  /// Epoch milliseconds of the most recent renewal.
  int64_t HeartbeatMs = 0;

  /// One-line JSON for the lease file (schema `lease` in json_validate).
  std::string toJson() const;
  /// Parses a lease file's contents; false + \p Err on malformed input.
  static bool fromJson(const std::string &Text, Lease &Out,
                       std::string *Err = nullptr);
};

/// Wall-clock now in milliseconds since the Unix epoch (lease timestamps
/// must be comparable across processes, so steady_clock is not usable).
int64_t nowEpochMs();

/// Lease-directory layout: everything for range i lives in flat files.
std::string leasePath(const std::string &Dir, size_t Range);
std::string shardPath(const std::string &Dir, size_t Range);
std::string donePath(const std::string &Dir, size_t Range);

enum class ClaimOutcome {
  /// The caller now holds the lease.
  Claimed,
  /// Another worker holds it (not an error).
  Held,
  /// Filesystem failure; \p Err is filled.
  Failed,
};

/// Attempts to claim \p L.Range in \p Dir for \p L.Owner. On success the
/// lease file exists with Created/Heartbeat set to now (updated in \p L).
ClaimOutcome claimLease(const std::string &Dir, Lease &L, Error *Err = nullptr);

/// Reads and parses the lease file at \p Path. False with \p Err (code
/// IoError when missing/unreadable, StoreCorrupt when unparsable).
bool readLeaseFile(const std::string &Path, Lease &Out, Error *Err = nullptr);

/// Renews a held lease: re-reads the file, verifies \p L still owns it,
/// and rewrites it with HeartbeatMs = now (updated in \p L). Returns false
/// with code LeaseLost when the file is gone or owned by someone else --
/// the caller must stop writing its shard. Fault site `lease.heartbeat`
/// fires here (kind `delay` stalls the renewal, `fail` fails it).
bool renewLease(const std::string &Dir, Lease &L, Error *Err = nullptr);

/// True when \p L's heartbeat is older than \p StaleAfterMs at \p NowMs.
bool leaseIsStale(const Lease &L, int64_t NowMs, int64_t StaleAfterMs);

/// Attempts to reclaim the stale lease on \p Stale.Range: atomically
/// renames the lease file to a per-reclaimer name and removes it. Returns
/// true when this caller won (the range is claimable again); false when
/// another reclaimer won first (not an error unless \p Err is filled).
bool reclaimLease(const std::string &Dir, const Lease &Stale,
                  const std::string &Reclaimer, Error *Err = nullptr);

/// Releases a held lease by unlinking its file. Safe to call only by the
/// owner on its claim-success path.
bool releaseLease(const std::string &Dir, const Lease &L, Error *Err = nullptr);

} // namespace support
} // namespace deept

#endif // DEEPT_SUPPORT_LEASE_H
