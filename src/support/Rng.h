//===- support/Rng.h - Deterministic pseudo random numbers -----*- C++ -*-===//
//
// Part of deept-cpp, a reproduction of "Fast and Precise Certification of
// Transformers" (PLDI 2021). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (SplitMix64) used everywhere in the library so
/// experiments are exactly reproducible across runs and platforms.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_SUPPORT_RNG_H
#define DEEPT_SUPPORT_RNG_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace deept {
namespace support {

/// Deterministic pseudo random number generator based on SplitMix64.
///
/// We intentionally avoid std::mt19937 + std::*_distribution because their
/// outputs are not guaranteed to be identical across standard library
/// implementations; this generator is fully specified here.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Returns the next raw 64-bit value.
  uint64_t next();

  /// Returns a uniform double in [0, 1).
  double uniform();

  /// Returns a uniform double in [Lo, Hi).
  double uniform(double Lo, double Hi);

  /// Returns a uniform integer in [0, N). Requires N > 0.
  uint64_t uniformInt(uint64_t N);

  /// Returns a standard normal sample (Box-Muller, one value per call).
  double gaussian();

  /// Returns a normal sample with the given mean and standard deviation.
  double gaussian(double Mean, double Stddev);

  /// Returns +1 or -1 with equal probability.
  double sign();

  /// Forks an independent generator; the child stream is decorrelated from
  /// the parent by mixing the parent's next output.
  Rng fork();

  /// Fisher-Yates shuffles \p Values in place.
  template <typename T> void shuffle(std::vector<T> &Values) {
    if (Values.empty())
      return;
    for (std::size_t I = Values.size() - 1; I > 0; --I) {
      std::size_t J = uniformInt(I + 1);
      std::swap(Values[I], Values[J]);
    }
  }

private:
  uint64_t State;
  bool HasSpareGaussian = false;
  double SpareGaussian = 0.0;
};

} // namespace support
} // namespace deept

#endif // DEEPT_SUPPORT_RNG_H
