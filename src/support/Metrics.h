//===- support/Metrics.h - Named counter/gauge/histogram registry -*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics half of the observability layer: a process-wide registry of
/// named counters (monotone sums), gauges (last/max values) and histograms
/// (count/sum/min/max aggregates). The abstract transformers and verifiers
/// record what happened -- eps symbols created and reduced, Fast vs
/// Precise dot products, refinement interval shrinkage, peak coefficient
/// bytes, FLOP estimates -- and the CLI / bench harnesses export the
/// registry as JSON (see DESIGN.md "Observability" for the name taxonomy).
///
/// Metrics are always on: increments are lock-free atomics (histograms use
/// a short critical section) and fire at transformer-call granularity, so
/// their cost vanishes next to the matrix work they count. Hot call sites
/// cache the handle:
///
///   static support::Counter &Calls =
///       support::Metrics::global().counter("zono.dot.fast.calls");
///   Calls.add(1);
///
/// Handles stay valid forever: the registry never erases entries (reset()
/// zeroes values but keeps registrations).
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_SUPPORT_METRICS_H
#define DEEPT_SUPPORT_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace deept {
namespace support {

/// Monotone sum. add() is lock-free.
class Counter {
public:
  void add(double Delta = 1.0) {
    double Cur = Val.load(std::memory_order_relaxed);
    while (!Val.compare_exchange_weak(Cur, Cur + Delta,
                                      std::memory_order_relaxed)) {
    }
  }
  double value() const { return Val.load(std::memory_order_relaxed); }
  void reset() { Val.store(0.0, std::memory_order_relaxed); }

private:
  std::atomic<double> Val{0.0};
};

/// Last-value or running-max instrument. set()/recordMax() are lock-free.
class Gauge {
public:
  void set(double V) { Val.store(V, std::memory_order_relaxed); }
  /// Keeps the maximum of all recorded values (peak tracking).
  void recordMax(double V) {
    double Cur = Val.load(std::memory_order_relaxed);
    while (Cur < V && !Val.compare_exchange_weak(Cur, V,
                                                 std::memory_order_relaxed)) {
    }
  }
  double value() const { return Val.load(std::memory_order_relaxed); }
  void reset() { Val.store(0.0, std::memory_order_relaxed); }

private:
  std::atomic<double> Val{0.0};
};

/// Count/sum/min/max aggregate over observed samples, plus approximate
/// quantiles from a bounded, deterministically decimated sample buffer:
/// every Stride-th observation is retained, and when the buffer fills the
/// stride doubles and every other retained sample is dropped. The
/// retained set is a pure function of the observation sequence (no
/// randomness), so exports are reproducible.
class Histogram {
public:
  struct Stats {
    uint64_t Count = 0;
    double Sum = 0.0;
    double Min = 0.0;
    double Max = 0.0;
    /// Nearest-rank quantiles over the retained sample. An empty
    /// histogram reports exactly 0 for all of these (never NaN), so the
    /// JSON / Prometheus emitters always have a finite number to print.
    double P50 = 0.0;
    double P90 = 0.0;
    double P99 = 0.0;
    double mean() const { return Count ? Sum / static_cast<double>(Count) : 0.0; }
  };

  void observe(double V);
  Stats stats() const;
  /// Approximate \p Q quantile (nearest rank over the retained sample);
  /// 0 on an empty histogram. Q in [0, 1].
  double quantile(double Q) const;
  void reset();

private:
  /// Retained-sample capacity; compaction halves the buffer at this size.
  static constexpr size_t SampleCap = 512;
  double quantileSorted(const std::vector<double> &Sorted, double Q) const;
  mutable std::mutex Mu;
  Stats S;
  std::vector<double> Samples;
  uint64_t Stride = 1;
};

/// The named-instrument registry. Instruments are created on first use and
/// never destroyed; returned references are stable for the process
/// lifetime.
class Metrics {
public:
  /// The process-wide registry (the one the library records into).
  static Metrics &global();

  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Histogram &histogram(const std::string &Name);

  /// Read-only lookups; 0 / empty stats when the instrument does not
  /// exist (they never create entries).
  double counterValue(const std::string &Name) const;
  double gaugeValue(const std::string &Name) const;
  Histogram::Stats histogramStats(const std::string &Name) const;

  /// Zeroes every instrument's value, keeping all registrations (and thus
  /// all cached references) valid. Scopes the registry to one run.
  void reset();

  /// Sorted name -> value snapshots of the registry, the enumeration
  /// surface the exporters (Metrics JSON, Prometheus text) build on.
  /// std::map keys keep the output ordering deterministic.
  std::map<std::string, double> counterSnapshot() const;
  std::map<std::string, double> gaugeSnapshot() const;
  std::map<std::string, Histogram::Stats> histogramSnapshot() const;

  /// The whole registry as a JSON object:
  ///   {"counters":{...},"gauges":{...},
  ///    "histograms":{"name":{"count":..,"sum":..,"min":..,"max":..,
  ///                          "mean":..,"p50":..,"p90":..,"p99":..}}}
  std::string toJson() const;

  /// Human-readable dump (one aligned table per instrument kind).
  std::string summaryTable() const;

private:
  mutable std::mutex Mu;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

} // namespace support
} // namespace deept

#endif // DEEPT_SUPPORT_METRICS_H
