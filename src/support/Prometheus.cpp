//===- support/Prometheus.cpp ---------------------------------*- C++ -*-===//

#include "support/Prometheus.h"

#include "support/Json.h"
#include "support/Metrics.h"

#include <cmath>
#include <cstdio>

using namespace deept;
using namespace deept::support;

std::string deept::support::prometheusName(const std::string &Name) {
  std::string Out = "deept_";
  Out.reserve(Out.size() + Name.size());
  for (char C : Name) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_' || C == ':';
    Out += Ok ? C : '_';
  }
  return Out;
}

std::string deept::support::prometheusEscapeLabel(const std::string &Value) {
  std::string Out;
  Out.reserve(Value.size());
  for (char C : Value) {
    if (C == '\\')
      Out += "\\\\";
    else if (C == '"')
      Out += "\\\"";
    else if (C == '\n')
      Out += "\\n";
    else
      Out += C;
  }
  return Out;
}

std::string deept::support::prometheusNumber(double V) {
  if (std::isnan(V))
    return "NaN";
  if (std::isinf(V))
    return V > 0 ? "+Inf" : "-Inf";
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

namespace {

void emitCounter(std::string &Out, const std::string &Name, double V) {
  std::string P = prometheusName(Name);
  Out += "# TYPE " + P + " counter\n" + P + " " + prometheusNumber(V) + "\n";
}

void emitGauge(std::string &Out, const std::string &Name, double V) {
  std::string P = prometheusName(Name);
  Out += "# TYPE " + P + " gauge\n" + P + " " + prometheusNumber(V) + "\n";
}

void emitSummary(std::string &Out, const std::string &Name,
                 const Histogram::Stats &S) {
  std::string P = prometheusName(Name);
  Out += "# TYPE " + P + " summary\n";
  Out += P + "{quantile=\"0.5\"} " + prometheusNumber(S.P50) + "\n";
  Out += P + "{quantile=\"0.9\"} " + prometheusNumber(S.P90) + "\n";
  Out += P + "{quantile=\"0.99\"} " + prometheusNumber(S.P99) + "\n";
  Out += P + "_sum " + prometheusNumber(S.Sum) + "\n";
  Out += P + "_count " + prometheusNumber(static_cast<double>(S.Count)) +
         "\n";
  Out += "# TYPE " + P + "_min gauge\n" + P + "_min " +
         prometheusNumber(S.Min) + "\n";
  Out += "# TYPE " + P + "_max gauge\n" + P + "_max " +
         prometheusNumber(S.Max) + "\n";
}

} // namespace

std::string deept::support::prometheusText(const Metrics &M) {
  std::string Out;
  for (const auto &[Name, V] : M.counterSnapshot())
    emitCounter(Out, Name, V);
  for (const auto &[Name, V] : M.gaugeSnapshot())
    emitGauge(Out, Name, V);
  for (const auto &[Name, S] : M.histogramSnapshot())
    emitSummary(Out, Name, S);
  return Out;
}

bool deept::support::prometheusFromStatsJson(const JsonValue &Doc,
                                             std::string &Out,
                                             std::string *Err) {
  // Accept either the full --stats-json document ({"command":..,
  // "metrics":{...}}) or the bare registry object.
  const JsonValue *Reg = Doc.find("metrics");
  if (!Reg)
    Reg = &Doc;
  const JsonValue *Counters = Reg->find("counters");
  const JsonValue *Gauges = Reg->find("gauges");
  const JsonValue *Histograms = Reg->find("histograms");
  if (!Counters && !Gauges && !Histograms) {
    if (Err)
      *Err = "not a stats document (no counters/gauges/histograms object)";
    return false;
  }
  auto Num = [](const JsonValue *V) {
    return V && V->K == JsonValue::Kind::Number ? V->NumberVal : 0.0;
  };
  Out.clear();
  if (Counters && Counters->isObject())
    for (const auto &[Name, V] : Counters->Members)
      emitCounter(Out, Name, V.NumberVal);
  if (Gauges && Gauges->isObject())
    for (const auto &[Name, V] : Gauges->Members)
      emitGauge(Out, Name, V.NumberVal);
  if (Histograms && Histograms->isObject())
    for (const auto &[Name, H] : Histograms->Members) {
      Histogram::Stats S;
      S.Count = static_cast<uint64_t>(Num(H.find("count")));
      S.Sum = Num(H.find("sum"));
      S.Min = Num(H.find("min"));
      S.Max = Num(H.find("max"));
      S.P50 = Num(H.find("p50"));
      S.P90 = Num(H.find("p90"));
      S.P99 = Num(H.find("p99"));
      emitSummary(Out, Name, S);
    }
  return true;
}
