//===- support/Io.cpp -----------------------------------------*- C++ -*-===//

#include "support/Io.h"

#include "support/Fault.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace deept;
using namespace deept::support;

namespace {

void fill(Error *Err, ErrorCode C, const std::string &Site,
          const std::string &Msg) {
  if (Err)
    *Err = Error(C, Site, Msg + ": " + std::strerror(errno));
}

/// write(2) everything, retrying on EINTR and short writes.
bool writeAll(int Fd, const char *Data, size_t N) {
  while (N > 0) {
    ssize_t W = ::write(Fd, Data, N);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += W;
    N -= static_cast<size_t>(W);
  }
  return true;
}

} // namespace

bool deept::support::atomicWriteFile(const std::string &Path,
                                     const std::string &Data, Error *Err) {
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid());
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (Fd < 0 || DEEPT_FAULT_IO_FAIL("io.atomic_open")) {
    if (Fd >= 0)
      ::close(Fd);
    fill(Err, ErrorCode::IoError, "io.atomic_write",
         "cannot create '" + Tmp + "'");
    return false;
  }
  bool Ok = writeAll(Fd, Data.data(), Data.size()) &&
            !DEEPT_FAULT_IO_FAIL("io.atomic_write");
  // fsync before rename: the rename must not become visible before the
  // data it points at.
  Ok = Ok && ::fsync(Fd) == 0;
  Ok = ::close(Fd) == 0 && Ok;
  Ok = Ok && ::rename(Tmp.c_str(), Path.c_str()) == 0;
  if (!Ok) {
    ::unlink(Tmp.c_str());
    fill(Err, ErrorCode::IoError, "io.atomic_write",
         "cannot write '" + Path + "'");
    return false;
  }
  return true;
}

bool deept::support::createFileExclusive(const std::string &Path,
                                         const std::string &Data, bool &Exists,
                                         Error *Err) {
  Exists = false;
  int Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (Fd < 0) {
    if (errno == EEXIST) {
      Exists = true;
      return false;
    }
    fill(Err, ErrorCode::IoError, "io.exclusive_create",
         "cannot create '" + Path + "'");
    return false;
  }
  bool Ok = writeAll(Fd, Data.data(), Data.size()) &&
            !DEEPT_FAULT_IO_FAIL("io.exclusive_create");
  Ok = Ok && ::fsync(Fd) == 0;
  Ok = ::close(Fd) == 0 && Ok;
  if (!Ok) {
    ::unlink(Path.c_str());
    fill(Err, ErrorCode::IoError, "io.exclusive_create",
         "cannot write '" + Path + "'");
    return false;
  }
  return true;
}

bool deept::support::renameFile(const std::string &From, const std::string &To,
                                Error *Err) {
  if (::rename(From.c_str(), To.c_str()) != 0) {
    fill(Err, ErrorCode::IoError, "io.rename",
         "cannot rename '" + From + "' to '" + To + "'");
    return false;
  }
  return true;
}

bool deept::support::removeFile(const std::string &Path, Error *Err) {
  if (::unlink(Path.c_str()) != 0) {
    fill(Err, ErrorCode::IoError, "io.remove", "cannot remove '" + Path + "'");
    return false;
  }
  return true;
}

bool deept::support::readFileToString(const std::string &Path, std::string &Out,
                                      Error *Err) {
  int Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
  if (Fd < 0) {
    fill(Err, ErrorCode::IoError, "io.read", "cannot open '" + Path + "'");
    return false;
  }
  Out.clear();
  char Buf[1 << 16];
  for (;;) {
    ssize_t R = ::read(Fd, Buf, sizeof(Buf));
    if (R < 0) {
      if (errno == EINTR)
        continue;
      ::close(Fd);
      fill(Err, ErrorCode::IoError, "io.read", "cannot read '" + Path + "'");
      return false;
    }
    if (R == 0)
      break;
    Out.append(Buf, static_cast<size_t>(R));
  }
  ::close(Fd);
  return true;
}

bool deept::support::fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0;
}

bool AppendFile::open(const std::string &P, Error *Err) {
  close();
  Fd = ::open(P.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (Fd < 0 || DEEPT_FAULT_IO_FAIL("store.open")) {
    if (Fd >= 0) {
      ::close(Fd);
      Fd = -1;
    }
    fill(Err, ErrorCode::StoreCorrupt, "store.open",
         "cannot open '" + P + "' for append");
    return false;
  }
  Path = P;
  return true;
}

void AppendFile::close() {
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
}

bool AppendFile::append(const std::string &Record, bool Fsync, Error *Err) {
  if (Fd < 0)
    return false;
  if (DEEPT_FAULT_IO_FAIL("store.write") ||
      !writeAll(Fd, Record.data(), Record.size())) {
    fill(Err, ErrorCode::IoError, "store.write",
         "short write to '" + Path + "'");
    return false;
  }
  if (Fsync && ::fsync(Fd) != 0) {
    fill(Err, ErrorCode::IoError, "store.fsync",
         "fsync of '" + Path + "' failed");
    return false;
  }
  return true;
}

bool deept::support::truncateFile(const std::string &Path, uint64_t Size,
                                  Error *Err) {
  if (::truncate(Path.c_str(), static_cast<off_t>(Size)) != 0) {
    fill(Err, ErrorCode::IoError, "io.truncate",
         "cannot truncate '" + Path + "'");
    return false;
  }
  return true;
}

bool deept::support::fileSize(const std::string &Path, uint64_t &Size) {
  struct stat St;
  if (::stat(Path.c_str(), &St) != 0)
    return false;
  Size = static_cast<uint64_t>(St.st_size);
  return true;
}
