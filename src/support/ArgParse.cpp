//===- support/ArgParse.cpp -----------------------------------*- C++ -*-===//

#include "support/ArgParse.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>

using namespace deept::support;

ArgParse::ArgParse(int Argc, const char *const *Argv,
                   const std::vector<std::string> &Switches) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--", 0) != 0) {
      Positional.push_back(std::move(Arg));
      continue;
    }
    std::string Name = Arg.substr(2);
    // --key=value form.
    auto Eq = Name.find('=');
    if (Eq != std::string::npos) {
      Values[Name.substr(0, Eq)] = Name.substr(Eq + 1);
      continue;
    }
    bool IsSwitch =
        std::find(Switches.begin(), Switches.end(), Name) != Switches.end();
    if (IsSwitch || I + 1 >= Argc || std::string(Argv[I + 1]).rfind("--", 0) == 0) {
      Values[Name] = "";
      continue;
    }
    Values[Name] = Argv[++I];
  }
}

bool ArgParse::has(const std::string &Name) const {
  return Values.count(Name) > 0;
}

std::string ArgParse::get(const std::string &Name,
                          const std::string &Default) const {
  auto It = Values.find(Name);
  return It == Values.end() ? Default : It->second;
}

long ArgParse::getInt(const std::string &Name, long Default) const {
  auto It = Values.find(Name);
  if (It == Values.end() || It->second.empty())
    return Default;
  return std::strtol(It->second.c_str(), nullptr, 10);
}

bool ArgParse::getIntStrict(const std::string &Name, long &Out,
                            std::string *Err) const {
  auto It = Values.find(Name);
  if (It == Values.end())
    return true;
  const std::string &Text = It->second;
  char *End = nullptr;
  errno = 0;
  long V = std::strtol(Text.c_str(), &End, 10);
  if (Text.empty() || std::isspace(Text[0]) ||
      End != Text.c_str() + Text.size() || errno == ERANGE) {
    if (Err)
      *Err = "--" + Name + " expects an integer, got '" + Text + "'";
    return false;
  }
  Out = V;
  return true;
}

double ArgParse::getDouble(const std::string &Name, double Default) const {
  auto It = Values.find(Name);
  if (It == Values.end() || It->second.empty())
    return Default;
  return std::strtod(It->second.c_str(), nullptr);
}

std::vector<std::string>
ArgParse::unknownFlags(const std::vector<std::string> &Known) const {
  std::vector<std::string> Out;
  for (const auto &[Name, Value] : Values)
    if (std::find(Known.begin(), Known.end(), Name) == Known.end())
      Out.push_back(Name);
  return Out;
}
