//===- support/FlightRecorder.cpp -----------------------------*- C++ -*-===//

#include "support/FlightRecorder.h"

#include "support/Io.h"
#include "support/Json.h"

using namespace deept;
using namespace deept::support;

FlightRecorder::FlightRecorder(size_t Capacity)
    : Cap(Capacity ? Capacity : 1), Start(std::chrono::steady_clock::now()) {}

double FlightRecorder::nowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

void FlightRecorder::record(const std::string &Kind, const std::string &Detail,
                            double A, double B, double C) {
  Event E;
  E.TMs = nowMs();
  E.Kind = Kind;
  E.Detail = Detail;
  E.A = A;
  E.B = B;
  E.C = C;
  std::lock_guard<std::mutex> Lock(Mu);
  if (Events.size() >= Cap) {
    Events.pop_front();
    Dropped++;
  }
  Events.push_back(std::move(E));
}

size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Events.size();
}

uint64_t FlightRecorder::droppedCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Dropped;
}

std::string FlightRecorder::toJson(const std::string &JobKey) const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string Out = "{\"job\":\"" + jsonEscape(JobKey) +
                    "\",\"capacity\":" + std::to_string(Cap) +
                    ",\"dropped\":" + std::to_string(Dropped) +
                    ",\"events\":[";
  bool First = true;
  for (const Event &E : Events) {
    if (!First)
      Out += ",";
    First = false;
    Out += "{\"t_ms\":" + jsonNumber(E.TMs) + ",\"kind\":\"" +
           jsonEscape(E.Kind) + "\",\"detail\":\"" + jsonEscape(E.Detail) +
           "\",\"a\":" + jsonNumber(E.A) + ",\"b\":" + jsonNumber(E.B) +
           ",\"c\":" + jsonNumber(E.C) + "}";
  }
  Out += "]}";
  return Out;
}

bool FlightRecorder::dumpJson(const std::string &Path,
                              const std::string &JobKey,
                              std::string *Err) const {
  Error E;
  if (atomicWriteFile(Path, toJson(JobKey) + "\n", &E))
    return true;
  if (Err)
    *Err = E.what();
  return false;
}
