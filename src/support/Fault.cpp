//===- support/Fault.cpp --------------------------------------*- C++ -*-===//

#include "support/Fault.h"

#include "support/Error.h"
#include "support/Metrics.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <new>
#include <thread>
#include <vector>

using namespace deept;
using namespace deept::support;

namespace {

enum class Kind { Alloc, Fail, Delay, ShortIo, Nan, Inf };

struct Spec {
  std::string Site;
  /// 1-based hit index at which the fault fires; 0 fires on every hit.
  uint64_t AtHit = 1;
  Kind K = Kind::Fail;
  double Param = 0.0;
  uint64_t Hits = 0; // per-spec hit counter for its site
};

/// Armed specs plus bookkeeping. A single mutex guards everything -- every
/// site is on a cold path (IO, per-job, per-layer), so contention is nil;
/// the Armed flag keeps the disarmed fast path to one relaxed load.
struct State {
  std::mutex Mu;
  std::vector<Spec> Specs;
  std::atomic<bool> Armed{false};
  std::atomic<uint64_t> Injected{0};
  bool EnvChecked = false;
};

State &state() {
  static State S;
  return S;
}

bool parseKind(const std::string &Tok, Kind &K) {
  if (Tok == "alloc")
    K = Kind::Alloc;
  else if (Tok == "fail")
    K = Kind::Fail;
  else if (Tok == "delay")
    K = Kind::Delay;
  else if (Tok == "short")
    K = Kind::ShortIo;
  else if (Tok == "nan")
    K = Kind::Nan;
  else if (Tok == "inf")
    K = Kind::Inf;
  else
    return false;
  return true;
}

/// Parses "site:count:kind[:param]" into \p Out.
bool parseOne(const std::string &Text, Spec &Out, std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = "fault spec '" + Text + "': " + Msg;
    return false;
  };
  std::vector<std::string> Fields;
  size_t Start = 0;
  while (true) {
    size_t Colon = Text.find(':', Start);
    Fields.push_back(Text.substr(Start, Colon - Start));
    if (Colon == std::string::npos)
      break;
    Start = Colon + 1;
  }
  if (Fields.size() < 3 || Fields.size() > 4)
    return Fail("want site:count:kind[:param]");
  if (Fields[0].empty())
    return Fail("empty site");
  Out.Site = Fields[0];
  char *End = nullptr;
  Out.AtHit = std::strtoull(Fields[1].c_str(), &End, 10);
  if (Fields[1].empty() || *End != '\0')
    return Fail("count must be a non-negative integer");
  if (!parseKind(Fields[2], Out.K))
    return Fail("unknown kind '" + Fields[2] +
                "' (want alloc, fail, delay, short, nan or inf)");
  Out.Param = Out.K == Kind::Delay ? 10.0 : 0.0;
  if (Fields.size() == 4) {
    Out.Param = std::strtod(Fields[3].c_str(), &End);
    if (Fields[3].empty() || *End != '\0' || Out.Param < 0)
      return Fail("param must be a non-negative number");
  }
  return true;
}

/// Lazily arms from DEEPT_FAULTS the first time any site is hit, so CLI
/// drills need no code changes. Call with the mutex held.
void checkEnvLocked(State &S) {
  if (S.EnvChecked)
    return;
  S.EnvChecked = true;
  const char *Env = std::getenv("DEEPT_FAULTS");
  if (!Env || !*Env)
    return;
  std::string SpecText(Env), Err;
  size_t Start = 0;
  std::vector<Spec> Parsed;
  while (true) {
    size_t Comma = SpecText.find(',', Start);
    std::string One = SpecText.substr(Start, Comma - Start);
    Spec Sp;
    if (!parseOne(One, Sp, &Err)) {
      std::fprintf(stderr, "warning: ignoring DEEPT_FAULTS: %s\n",
                   Err.c_str());
      return;
    }
    Parsed.push_back(std::move(Sp));
    if (Comma == std::string::npos)
      break;
    Start = Comma + 1;
  }
  S.Specs = std::move(Parsed);
  S.Armed.store(!S.Specs.empty(), std::memory_order_release);
}

support::Counter &injectedCounter() {
  static support::Counter &C =
      support::Metrics::global().counter("fault.injected");
  return C;
}

/// Returns the matching armed spec for a hit of \p Site, if its turn has
/// come, bumping hit counters either way. nullptr when nothing fires.
/// \p Filter restricts which kinds can fire at this hook. Copies the spec
/// out so the caller acts without the lock held.
bool nextFault(const char *Site, bool (*Filter)(Kind), Spec &Out) {
  State &S = state();
  if (!S.Armed.load(std::memory_order_acquire)) {
    // One cheap lock on the very first hit to pick up DEEPT_FAULTS.
    std::lock_guard<std::mutex> Lock(S.Mu);
    checkEnvLocked(S);
    if (!S.Armed.load(std::memory_order_relaxed))
      return false;
  }
  std::lock_guard<std::mutex> Lock(S.Mu);
  for (Spec &Sp : S.Specs) {
    if (Sp.Site != Site || !Filter(Sp.K))
      continue;
    ++Sp.Hits;
    if (Sp.AtHit != 0 && Sp.Hits != Sp.AtHit)
      continue;
    Out = Sp;
    S.Injected.fetch_add(1, std::memory_order_relaxed);
    injectedCounter().add(1);
    return true;
  }
  return false;
}

bool isPointKind(Kind K) {
  return K == Kind::Alloc || K == Kind::Fail || K == Kind::Delay;
}
bool isIoKind(Kind K) { return K == Kind::ShortIo; }
bool isCorruptKind(Kind K) { return K == Kind::Nan || K == Kind::Inf; }

} // namespace

bool deept::support::fault::arm(const std::string &SpecText,
                                std::string *Err) {
  std::vector<Spec> Parsed;
  size_t Start = 0;
  while (Start <= SpecText.size() && !SpecText.empty()) {
    size_t Comma = SpecText.find(',', Start);
    Spec Sp;
    if (!parseOne(SpecText.substr(Start, Comma - Start), Sp, Err))
      return false;
    Parsed.push_back(std::move(Sp));
    if (Comma == std::string::npos)
      break;
    Start = Comma + 1;
  }
  State &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.Specs = std::move(Parsed);
  S.EnvChecked = true; // explicit arming overrides the environment
  S.Armed.store(!S.Specs.empty(), std::memory_order_release);
  return true;
}

void deept::support::fault::disarm() {
  State &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.Specs.clear();
  S.EnvChecked = true;
  S.Armed.store(false, std::memory_order_release);
  S.Injected.store(0, std::memory_order_relaxed);
}

bool deept::support::fault::armed() {
  return state().Armed.load(std::memory_order_acquire);
}

uint64_t deept::support::fault::injectedCount() {
  return state().Injected.load(std::memory_order_relaxed);
}

void deept::support::fault::point(const char *Site) {
  Spec Sp;
  if (!nextFault(Site, isPointKind, Sp))
    return;
  switch (Sp.K) {
  case Kind::Alloc:
    throw std::bad_alloc();
  case Kind::Fail:
    throw Error(ErrorCode::FaultInjected, Site, "injected fault");
  case Kind::Delay:
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(Sp.Param * 1e3)));
    return;
  default:
    return;
  }
}

bool deept::support::fault::ioFail(const char *Site) {
  Spec Sp;
  return nextFault(Site, isIoKind, Sp);
}

void deept::support::fault::corrupt(const char *Site, double *Data,
                                    size_t N) {
  if (N == 0 || !Data)
    return;
  Spec Sp;
  if (!nextFault(Site, isCorruptKind, Sp))
    return;
  Data[N / 2] = Sp.K == Kind::Nan
                    ? std::numeric_limits<double>::quiet_NaN()
                    : std::numeric_limits<double>::infinity();
}
