//===- support/Rng.cpp ----------------------------------------*- C++ -*-===//

#include "support/Rng.h"

#include <cassert>
#include <cmath>

using namespace deept::support;

uint64_t Rng::next() {
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double Lo, double Hi) {
  assert(Lo <= Hi && "empty uniform range");
  return Lo + (Hi - Lo) * uniform();
}

uint64_t Rng::uniformInt(uint64_t N) {
  assert(N > 0 && "uniformInt requires a non-empty range");
  // Rejection sampling to avoid modulo bias.
  uint64_t Limit = UINT64_MAX - UINT64_MAX % N;
  uint64_t V = next();
  while (V >= Limit)
    V = next();
  return V % N;
}

double Rng::gaussian() {
  if (HasSpareGaussian) {
    HasSpareGaussian = false;
    return SpareGaussian;
  }
  // Box-Muller transform; U1 is kept away from zero for the logarithm.
  double U1 = uniform();
  if (U1 < 1e-300)
    U1 = 1e-300;
  double U2 = uniform();
  double R = std::sqrt(-2.0 * std::log(U1));
  double Theta = 2.0 * M_PI * U2;
  SpareGaussian = R * std::sin(Theta);
  HasSpareGaussian = true;
  return R * std::cos(Theta);
}

double Rng::gaussian(double Mean, double Stddev) {
  return Mean + Stddev * gaussian();
}

double Rng::sign() { return (next() & 1) ? 1.0 : -1.0; }

Rng Rng::fork() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }
