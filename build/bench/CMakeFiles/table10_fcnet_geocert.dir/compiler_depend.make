# Empty compiler generated dependencies file for table10_fcnet_geocert.
# This may be replaced when dependencies are built.
