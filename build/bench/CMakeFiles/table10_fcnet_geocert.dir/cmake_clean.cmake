file(REMOVE_RECURSE
  "CMakeFiles/table10_fcnet_geocert.dir/table10_fcnet_geocert.cpp.o"
  "CMakeFiles/table10_fcnet_geocert.dir/table10_fcnet_geocert.cpp.o.d"
  "table10_fcnet_geocert"
  "table10_fcnet_geocert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_fcnet_geocert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
