file(REMOVE_RECURSE
  "CMakeFiles/figure4_zonotope_geometry.dir/figure4_zonotope_geometry.cpp.o"
  "CMakeFiles/figure4_zonotope_geometry.dir/figure4_zonotope_geometry.cpp.o.d"
  "figure4_zonotope_geometry"
  "figure4_zonotope_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure4_zonotope_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
