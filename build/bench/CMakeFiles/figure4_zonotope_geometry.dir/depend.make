# Empty dependencies file for figure4_zonotope_geometry.
# This may be replaced when dependencies are built.
