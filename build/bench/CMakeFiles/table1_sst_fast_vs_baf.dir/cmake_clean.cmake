file(REMOVE_RECURSE
  "CMakeFiles/table1_sst_fast_vs_baf.dir/table1_sst_fast_vs_baf.cpp.o"
  "CMakeFiles/table1_sst_fast_vs_baf.dir/table1_sst_fast_vs_baf.cpp.o.d"
  "table1_sst_fast_vs_baf"
  "table1_sst_fast_vs_baf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_sst_fast_vs_baf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
