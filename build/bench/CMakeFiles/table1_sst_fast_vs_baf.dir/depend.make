# Empty dependencies file for table1_sst_fast_vs_baf.
# This may be replaced when dependencies are built.
