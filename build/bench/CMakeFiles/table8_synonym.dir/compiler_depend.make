# Empty compiler generated dependencies file for table8_synonym.
# This may be replaced when dependencies are built.
