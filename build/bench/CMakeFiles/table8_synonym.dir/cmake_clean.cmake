file(REMOVE_RECURSE
  "CMakeFiles/table8_synonym.dir/table8_synonym.cpp.o"
  "CMakeFiles/table8_synonym.dir/table8_synonym.cpp.o.d"
  "table8_synonym"
  "table8_synonym.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_synonym.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
