file(REMOVE_RECURSE
  "CMakeFiles/table2_yelp_fast_vs_baf.dir/table2_yelp_fast_vs_baf.cpp.o"
  "CMakeFiles/table2_yelp_fast_vs_baf.dir/table2_yelp_fast_vs_baf.cpp.o.d"
  "table2_yelp_fast_vs_baf"
  "table2_yelp_fast_vs_baf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_yelp_fast_vs_baf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
