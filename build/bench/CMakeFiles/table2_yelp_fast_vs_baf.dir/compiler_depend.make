# Empty compiler generated dependencies file for table2_yelp_fast_vs_baf.
# This may be replaced when dependencies are built.
