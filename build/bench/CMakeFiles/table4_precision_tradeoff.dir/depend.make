# Empty dependencies file for table4_precision_tradeoff.
# This may be replaced when dependencies are built.
