file(REMOVE_RECURSE
  "CMakeFiles/table4_precision_tradeoff.dir/table4_precision_tradeoff.cpp.o"
  "CMakeFiles/table4_precision_tradeoff.dir/table4_precision_tradeoff.cpp.o.d"
  "table4_precision_tradeoff"
  "table4_precision_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_precision_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
