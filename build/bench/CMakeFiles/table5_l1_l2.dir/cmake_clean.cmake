file(REMOVE_RECURSE
  "CMakeFiles/table5_l1_l2.dir/table5_l1_l2.cpp.o"
  "CMakeFiles/table5_l1_l2.dir/table5_l1_l2.cpp.o.d"
  "table5_l1_l2"
  "table5_l1_l2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_l1_l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
