# Empty dependencies file for table5_l1_l2.
# This may be replaced when dependencies are built.
