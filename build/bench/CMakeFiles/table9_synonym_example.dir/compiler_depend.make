# Empty compiler generated dependencies file for table9_synonym_example.
# This may be replaced when dependencies are built.
