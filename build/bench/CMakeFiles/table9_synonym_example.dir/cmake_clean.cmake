file(REMOVE_RECURSE
  "CMakeFiles/table9_synonym_example.dir/table9_synonym_example.cpp.o"
  "CMakeFiles/table9_synonym_example.dir/table9_synonym_example.cpp.o.d"
  "table9_synonym_example"
  "table9_synonym_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_synonym_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
