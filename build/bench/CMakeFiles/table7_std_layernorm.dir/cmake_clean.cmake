file(REMOVE_RECURSE
  "CMakeFiles/table7_std_layernorm.dir/table7_std_layernorm.cpp.o"
  "CMakeFiles/table7_std_layernorm.dir/table7_std_layernorm.cpp.o.d"
  "table7_std_layernorm"
  "table7_std_layernorm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_std_layernorm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
