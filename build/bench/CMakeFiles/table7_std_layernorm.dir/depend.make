# Empty dependencies file for table7_std_layernorm.
# This may be replaced when dependencies are built.
