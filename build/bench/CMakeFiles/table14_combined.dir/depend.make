# Empty dependencies file for table14_combined.
# This may be replaced when dependencies are built.
