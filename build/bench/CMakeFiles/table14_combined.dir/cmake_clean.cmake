file(REMOVE_RECURSE
  "CMakeFiles/table14_combined.dir/table14_combined.cpp.o"
  "CMakeFiles/table14_combined.dir/table14_combined.cpp.o.d"
  "table14_combined"
  "table14_combined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table14_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
