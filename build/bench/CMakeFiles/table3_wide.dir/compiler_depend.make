# Empty compiler generated dependencies file for table3_wide.
# This may be replaced when dependencies are built.
