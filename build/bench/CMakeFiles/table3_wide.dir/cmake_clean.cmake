file(REMOVE_RECURSE
  "CMakeFiles/table3_wide.dir/table3_wide.cpp.o"
  "CMakeFiles/table3_wide.dir/table3_wide.cpp.o.d"
  "table3_wide"
  "table3_wide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_wide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
