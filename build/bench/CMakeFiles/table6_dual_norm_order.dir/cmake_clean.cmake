file(REMOVE_RECURSE
  "CMakeFiles/table6_dual_norm_order.dir/table6_dual_norm_order.cpp.o"
  "CMakeFiles/table6_dual_norm_order.dir/table6_dual_norm_order.cpp.o.d"
  "table6_dual_norm_order"
  "table6_dual_norm_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_dual_norm_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
