# Empty compiler generated dependencies file for table6_dual_norm_order.
# This may be replaced when dependencies are built.
