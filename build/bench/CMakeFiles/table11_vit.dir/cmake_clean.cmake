file(REMOVE_RECURSE
  "CMakeFiles/table11_vit.dir/table11_vit.cpp.o"
  "CMakeFiles/table11_vit.dir/table11_vit.cpp.o.d"
  "table11_vit"
  "table11_vit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table11_vit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
