# Empty dependencies file for table11_vit.
# This may be replaced when dependencies are built.
