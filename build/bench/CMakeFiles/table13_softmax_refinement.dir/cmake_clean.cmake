file(REMOVE_RECURSE
  "CMakeFiles/table13_softmax_refinement.dir/table13_softmax_refinement.cpp.o"
  "CMakeFiles/table13_softmax_refinement.dir/table13_softmax_refinement.cpp.o.d"
  "table13_softmax_refinement"
  "table13_softmax_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table13_softmax_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
