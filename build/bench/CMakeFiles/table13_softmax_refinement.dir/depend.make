# Empty dependencies file for table13_softmax_refinement.
# This may be replaced when dependencies are built.
