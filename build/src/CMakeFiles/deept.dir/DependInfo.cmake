
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/Enumeration.cpp" "src/CMakeFiles/deept.dir/attack/Enumeration.cpp.o" "gcc" "src/CMakeFiles/deept.dir/attack/Enumeration.cpp.o.d"
  "/root/repo/src/attack/Pgd.cpp" "src/CMakeFiles/deept.dir/attack/Pgd.cpp.o" "gcc" "src/CMakeFiles/deept.dir/attack/Pgd.cpp.o.d"
  "/root/repo/src/autograd/Adam.cpp" "src/CMakeFiles/deept.dir/autograd/Adam.cpp.o" "gcc" "src/CMakeFiles/deept.dir/autograd/Adam.cpp.o.d"
  "/root/repo/src/autograd/Tape.cpp" "src/CMakeFiles/deept.dir/autograd/Tape.cpp.o" "gcc" "src/CMakeFiles/deept.dir/autograd/Tape.cpp.o.d"
  "/root/repo/src/crown/Backward.cpp" "src/CMakeFiles/deept.dir/crown/Backward.cpp.o" "gcc" "src/CMakeFiles/deept.dir/crown/Backward.cpp.o.d"
  "/root/repo/src/crown/CrownVerifier.cpp" "src/CMakeFiles/deept.dir/crown/CrownVerifier.cpp.o" "gcc" "src/CMakeFiles/deept.dir/crown/CrownVerifier.cpp.o.d"
  "/root/repo/src/crown/Forward.cpp" "src/CMakeFiles/deept.dir/crown/Forward.cpp.o" "gcc" "src/CMakeFiles/deept.dir/crown/Forward.cpp.o.d"
  "/root/repo/src/crown/Graph.cpp" "src/CMakeFiles/deept.dir/crown/Graph.cpp.o" "gcc" "src/CMakeFiles/deept.dir/crown/Graph.cpp.o.d"
  "/root/repo/src/crown/Relaxations.cpp" "src/CMakeFiles/deept.dir/crown/Relaxations.cpp.o" "gcc" "src/CMakeFiles/deept.dir/crown/Relaxations.cpp.o.d"
  "/root/repo/src/crown/TransformerGraph.cpp" "src/CMakeFiles/deept.dir/crown/TransformerGraph.cpp.o" "gcc" "src/CMakeFiles/deept.dir/crown/TransformerGraph.cpp.o.d"
  "/root/repo/src/data/StrokeImages.cpp" "src/CMakeFiles/deept.dir/data/StrokeImages.cpp.o" "gcc" "src/CMakeFiles/deept.dir/data/StrokeImages.cpp.o.d"
  "/root/repo/src/data/SyntheticCorpus.cpp" "src/CMakeFiles/deept.dir/data/SyntheticCorpus.cpp.o" "gcc" "src/CMakeFiles/deept.dir/data/SyntheticCorpus.cpp.o.d"
  "/root/repo/src/nn/FeedForwardNet.cpp" "src/CMakeFiles/deept.dir/nn/FeedForwardNet.cpp.o" "gcc" "src/CMakeFiles/deept.dir/nn/FeedForwardNet.cpp.o.d"
  "/root/repo/src/nn/Serialize.cpp" "src/CMakeFiles/deept.dir/nn/Serialize.cpp.o" "gcc" "src/CMakeFiles/deept.dir/nn/Serialize.cpp.o.d"
  "/root/repo/src/nn/Train.cpp" "src/CMakeFiles/deept.dir/nn/Train.cpp.o" "gcc" "src/CMakeFiles/deept.dir/nn/Train.cpp.o.d"
  "/root/repo/src/nn/Transformer.cpp" "src/CMakeFiles/deept.dir/nn/Transformer.cpp.o" "gcc" "src/CMakeFiles/deept.dir/nn/Transformer.cpp.o.d"
  "/root/repo/src/support/ArgParse.cpp" "src/CMakeFiles/deept.dir/support/ArgParse.cpp.o" "gcc" "src/CMakeFiles/deept.dir/support/ArgParse.cpp.o.d"
  "/root/repo/src/support/Rng.cpp" "src/CMakeFiles/deept.dir/support/Rng.cpp.o" "gcc" "src/CMakeFiles/deept.dir/support/Rng.cpp.o.d"
  "/root/repo/src/support/Table.cpp" "src/CMakeFiles/deept.dir/support/Table.cpp.o" "gcc" "src/CMakeFiles/deept.dir/support/Table.cpp.o.d"
  "/root/repo/src/tensor/Matrix.cpp" "src/CMakeFiles/deept.dir/tensor/Matrix.cpp.o" "gcc" "src/CMakeFiles/deept.dir/tensor/Matrix.cpp.o.d"
  "/root/repo/src/verify/DeepT.cpp" "src/CMakeFiles/deept.dir/verify/DeepT.cpp.o" "gcc" "src/CMakeFiles/deept.dir/verify/DeepT.cpp.o.d"
  "/root/repo/src/verify/FeedForwardVerifier.cpp" "src/CMakeFiles/deept.dir/verify/FeedForwardVerifier.cpp.o" "gcc" "src/CMakeFiles/deept.dir/verify/FeedForwardVerifier.cpp.o.d"
  "/root/repo/src/verify/RadiusSearch.cpp" "src/CMakeFiles/deept.dir/verify/RadiusSearch.cpp.o" "gcc" "src/CMakeFiles/deept.dir/verify/RadiusSearch.cpp.o.d"
  "/root/repo/src/zono/DotProduct.cpp" "src/CMakeFiles/deept.dir/zono/DotProduct.cpp.o" "gcc" "src/CMakeFiles/deept.dir/zono/DotProduct.cpp.o.d"
  "/root/repo/src/zono/Elementwise.cpp" "src/CMakeFiles/deept.dir/zono/Elementwise.cpp.o" "gcc" "src/CMakeFiles/deept.dir/zono/Elementwise.cpp.o.d"
  "/root/repo/src/zono/Reduction.cpp" "src/CMakeFiles/deept.dir/zono/Reduction.cpp.o" "gcc" "src/CMakeFiles/deept.dir/zono/Reduction.cpp.o.d"
  "/root/repo/src/zono/Refinement.cpp" "src/CMakeFiles/deept.dir/zono/Refinement.cpp.o" "gcc" "src/CMakeFiles/deept.dir/zono/Refinement.cpp.o.d"
  "/root/repo/src/zono/Softmax.cpp" "src/CMakeFiles/deept.dir/zono/Softmax.cpp.o" "gcc" "src/CMakeFiles/deept.dir/zono/Softmax.cpp.o.d"
  "/root/repo/src/zono/Zonotope.cpp" "src/CMakeFiles/deept.dir/zono/Zonotope.cpp.o" "gcc" "src/CMakeFiles/deept.dir/zono/Zonotope.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
