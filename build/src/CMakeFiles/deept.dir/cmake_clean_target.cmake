file(REMOVE_RECURSE
  "libdeept.a"
)
