# Empty dependencies file for deept.
# This may be replaced when dependencies are built.
