# Empty dependencies file for sentiment_certification.
# This may be replaced when dependencies are built.
