file(REMOVE_RECURSE
  "CMakeFiles/sentiment_certification.dir/sentiment_certification.cpp.o"
  "CMakeFiles/sentiment_certification.dir/sentiment_certification.cpp.o.d"
  "sentiment_certification"
  "sentiment_certification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentiment_certification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
