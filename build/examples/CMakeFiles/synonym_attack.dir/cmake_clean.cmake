file(REMOVE_RECURSE
  "CMakeFiles/synonym_attack.dir/synonym_attack.cpp.o"
  "CMakeFiles/synonym_attack.dir/synonym_attack.cpp.o.d"
  "synonym_attack"
  "synonym_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synonym_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
