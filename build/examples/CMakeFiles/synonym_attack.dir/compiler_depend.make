# Empty compiler generated dependencies file for synonym_attack.
# This may be replaced when dependencies are built.
