# Empty compiler generated dependencies file for vision_transformer.
# This may be replaced when dependencies are built.
