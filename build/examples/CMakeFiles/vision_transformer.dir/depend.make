# Empty dependencies file for vision_transformer.
# This may be replaced when dependencies are built.
