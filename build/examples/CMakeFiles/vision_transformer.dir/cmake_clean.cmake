file(REMOVE_RECURSE
  "CMakeFiles/vision_transformer.dir/vision_transformer.cpp.o"
  "CMakeFiles/vision_transformer.dir/vision_transformer.cpp.o.d"
  "vision_transformer"
  "vision_transformer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vision_transformer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
