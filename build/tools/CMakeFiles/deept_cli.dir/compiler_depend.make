# Empty compiler generated dependencies file for deept_cli.
# This may be replaced when dependencies are built.
