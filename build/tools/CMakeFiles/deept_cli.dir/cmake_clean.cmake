file(REMOVE_RECURSE
  "CMakeFiles/deept_cli.dir/deept_cli.cpp.o"
  "CMakeFiles/deept_cli.dir/deept_cli.cpp.o.d"
  "deept_cli"
  "deept_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deept_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
