file(REMOVE_RECURSE
  "CMakeFiles/deept_tests.dir/argparse_test.cpp.o"
  "CMakeFiles/deept_tests.dir/argparse_test.cpp.o.d"
  "CMakeFiles/deept_tests.dir/attack_test.cpp.o"
  "CMakeFiles/deept_tests.dir/attack_test.cpp.o.d"
  "CMakeFiles/deept_tests.dir/autograd_test.cpp.o"
  "CMakeFiles/deept_tests.dir/autograd_test.cpp.o.d"
  "CMakeFiles/deept_tests.dir/crown_test.cpp.o"
  "CMakeFiles/deept_tests.dir/crown_test.cpp.o.d"
  "CMakeFiles/deept_tests.dir/forward_test.cpp.o"
  "CMakeFiles/deept_tests.dir/forward_test.cpp.o.d"
  "CMakeFiles/deept_tests.dir/integration_test.cpp.o"
  "CMakeFiles/deept_tests.dir/integration_test.cpp.o.d"
  "CMakeFiles/deept_tests.dir/nn_test.cpp.o"
  "CMakeFiles/deept_tests.dir/nn_test.cpp.o.d"
  "CMakeFiles/deept_tests.dir/support_test.cpp.o"
  "CMakeFiles/deept_tests.dir/support_test.cpp.o.d"
  "CMakeFiles/deept_tests.dir/tensor_test.cpp.o"
  "CMakeFiles/deept_tests.dir/tensor_test.cpp.o.d"
  "CMakeFiles/deept_tests.dir/verify_test.cpp.o"
  "CMakeFiles/deept_tests.dir/verify_test.cpp.o.d"
  "CMakeFiles/deept_tests.dir/zonotope_test.cpp.o"
  "CMakeFiles/deept_tests.dir/zonotope_test.cpp.o.d"
  "deept_tests"
  "deept_tests.pdb"
  "deept_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deept_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
