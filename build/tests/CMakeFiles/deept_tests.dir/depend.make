# Empty dependencies file for deept_tests.
# This may be replaced when dependencies are built.
