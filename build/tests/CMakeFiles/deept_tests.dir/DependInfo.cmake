
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/argparse_test.cpp" "tests/CMakeFiles/deept_tests.dir/argparse_test.cpp.o" "gcc" "tests/CMakeFiles/deept_tests.dir/argparse_test.cpp.o.d"
  "/root/repo/tests/attack_test.cpp" "tests/CMakeFiles/deept_tests.dir/attack_test.cpp.o" "gcc" "tests/CMakeFiles/deept_tests.dir/attack_test.cpp.o.d"
  "/root/repo/tests/autograd_test.cpp" "tests/CMakeFiles/deept_tests.dir/autograd_test.cpp.o" "gcc" "tests/CMakeFiles/deept_tests.dir/autograd_test.cpp.o.d"
  "/root/repo/tests/crown_test.cpp" "tests/CMakeFiles/deept_tests.dir/crown_test.cpp.o" "gcc" "tests/CMakeFiles/deept_tests.dir/crown_test.cpp.o.d"
  "/root/repo/tests/forward_test.cpp" "tests/CMakeFiles/deept_tests.dir/forward_test.cpp.o" "gcc" "tests/CMakeFiles/deept_tests.dir/forward_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/deept_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/deept_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/nn_test.cpp" "tests/CMakeFiles/deept_tests.dir/nn_test.cpp.o" "gcc" "tests/CMakeFiles/deept_tests.dir/nn_test.cpp.o.d"
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/deept_tests.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/deept_tests.dir/support_test.cpp.o.d"
  "/root/repo/tests/tensor_test.cpp" "tests/CMakeFiles/deept_tests.dir/tensor_test.cpp.o" "gcc" "tests/CMakeFiles/deept_tests.dir/tensor_test.cpp.o.d"
  "/root/repo/tests/verify_test.cpp" "tests/CMakeFiles/deept_tests.dir/verify_test.cpp.o" "gcc" "tests/CMakeFiles/deept_tests.dir/verify_test.cpp.o.d"
  "/root/repo/tests/zonotope_test.cpp" "tests/CMakeFiles/deept_tests.dir/zonotope_test.cpp.o" "gcc" "tests/CMakeFiles/deept_tests.dir/zonotope_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/deept.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
