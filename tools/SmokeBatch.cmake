# SmokeBatch.cmake - end-to-end smoke test of the batch scheduler.
#
# Trains a tiny model, runs a four-job batch (a fixed-eps job, a radius
# search, a forced deadline expiry that must degrade, and a bad word
# position that must error), validates the JSONL result store, then
# re-runs with --resume and checks every job is skipped. Run via:
#   cmake -DDEEPT_CLI=... -DJSON_VALIDATE=... -DWORK_DIR=... -P SmokeBatch.cmake

foreach(Var DEEPT_CLI JSON_VALIDATE WORK_DIR)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "SmokeBatch.cmake needs -D${Var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(Model "${WORK_DIR}/batch.dptm")
set(Jobs "${WORK_DIR}/jobs.json")
set(Results "${WORK_DIR}/results.jsonl")
file(REMOVE "${Results}")

execute_process(
  COMMAND "${DEEPT_CLI}" train --out "${Model}" --layers 1 --embed 8
          --heads 2 --hidden 8 --steps 5
  RESULT_VARIABLE Rc)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "deept_cli train failed (rc=${Rc})")
endif()

file(WRITE "${Jobs}" [=[
{"jobs":[
  {"id":"fixed","seed":3,"word":0,"norm":"l2","eps":0.02,"method":"fast"},
  {"id":"search","seed":4,"word":0,"norm":"l1","eps":0.05,"search":true,
   "method":"fast"},
  {"id":"expire","seed":3,"word":0,"method":"precise","deadline_ms":0},
  {"id":"badword","seed":5,"word":99,"method":"fast"}
]}
]=])

execute_process(
  COMMAND "${DEEPT_CLI}" batch --model "${Model}" --jobs "${Jobs}"
          --out "${Results}"
  RESULT_VARIABLE Rc OUTPUT_VARIABLE Out ERROR_VARIABLE ErrOut)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "deept_cli batch failed (rc=${Rc}): ${ErrOut}")
endif()
if(NOT Out MATCHES "4 jobs \\(2 ok, 1 degraded, 1 error, 0 skipped\\)")
  message(FATAL_ERROR "unexpected batch summary: ${Out}")
endif()

execute_process(
  COMMAND "${JSON_VALIDATE}" --jsonl --require-key key "${Results}"
  RESULT_VARIABLE Rc)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "result store JSONL invalid (rc=${Rc})")
endif()

# Resume: every completed key (including the degraded and errored jobs)
# is already in the store, so nothing re-executes.
execute_process(
  COMMAND "${DEEPT_CLI}" batch --model "${Model}" --jobs "${Jobs}"
          --out "${Results}" --resume
  RESULT_VARIABLE Rc OUTPUT_VARIABLE Out ERROR_VARIABLE ErrOut)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "deept_cli batch --resume failed (rc=${Rc}): ${ErrOut}")
endif()
if(NOT Out MATCHES "4 jobs \\(0 ok, 0 degraded, 0 error, 4 skipped\\)")
  message(FATAL_ERROR "resume did not skip completed jobs: ${Out}")
endif()

# Malformed --deadline-ms must be rejected loudly.
execute_process(
  COMMAND "${DEEPT_CLI}" batch --model "${Model}" --jobs "${Jobs}"
          --out "${Results}" --deadline-ms nonsense
  RESULT_VARIABLE Rc ERROR_VARIABLE ErrOut OUTPUT_QUIET)
if(Rc EQUAL 0)
  message(FATAL_ERROR "batch accepted --deadline-ms nonsense")
endif()
if(NOT ErrOut MATCHES "expects an integer")
  message(FATAL_ERROR "missing strict-parse error, got: ${ErrOut}")
endif()

message(STATUS "batch scheduler smoke test passed")
