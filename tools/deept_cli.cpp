//===- tools/deept_cli.cpp - Command line front end ------------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
// The deept command line tool: train Transformer sentiment classifiers on
// the synthetic corpora, certify them under threat models T1 and T2 with
// any verifier of the family, attack them, and inspect saved models.
//
//   deept_cli train   --out model.dptm --corpus sst --layers 3 [...]
//   deept_cli certify --model model.dptm --corpus sst --norm l2 [...]
//   deept_cli synonym --model model.dptm --corpus synonym [--count 10]
//   deept_cli attack  --model model.dptm --corpus sst --norm l2 [...]
//   deept_cli info    --model model.dptm
//
//===----------------------------------------------------------------------===//

#include "attack/Enumeration.h"
#include "attack/Pgd.h"
#include "crown/CrownVerifier.h"
#include "nn/Serialize.h"
#include "nn/Train.h"
#include "support/ArgParse.h"
#include "support/Error.h"
#include "support/Io.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Parallel.h"
#include "support/Prometheus.h"
#include "support/Timer.h"
#include "support/Trace.h"
#include "tensor/Kernels.h"
#include "verify/Certificate.h"
#include "verify/Coordination.h"
#include "verify/DeepT.h"
#include "verify/Profile.h"
#include "verify/RadiusSearch.h"
#include "verify/Scheduler.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

using namespace deept;
using support::ArgParse;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: deept_cli <command> [flags]\n"
      "\n"
      "commands:\n"
      "  train    --out FILE [--corpus sst|yelp|synonym] [--embed N]\n"
      "           [--layers N] [--heads N] [--hidden N] [--steps N]\n"
      "           [--std-layernorm] [--robust] [--seed N]\n"
      "  certify  --model FILE [--corpus ...] [--norm l1|l2|linf]\n"
      "           [--word N] [--sentences N]\n"
      "           [--verifier fast|precise|combined|crown-baf|crown-backward]\n"
      "           [--eps R] certify one fixed radius R (prints the margin;\n"
      "           a non-positive margin means falsified) instead of binary-\n"
      "           searching the largest certifiable radius\n"
      "           [--precision f32|f64] kernel precision for the dual-norm\n"
      "           reductions (DeepT verifiers only; f32 is soundly widened\n"
      "           and auto-escalates to f64 when a query would falsify)\n"
      "           [--profile-out FILE.jsonl] per-query precision profiles\n"
      "           (checkpoint width/growth stats + noise-symbol\n"
      "           attribution; DeepT verifiers only, one line per margin\n"
      "           computation)\n"
      "           [--cert-out FILE.jsonl] proof certificates (DeepT\n"
      "           verifiers only, one CRC-checked envelope per margin\n"
      "           computation; replay with `deept_check FILE.jsonl`)\n"
      "  synonym  --model FILE [--corpus ...] [--count N]\n"
      "  attack   --model FILE [--corpus ...] [--norm l1|l2|linf] [--word N]\n"
      "  batch    --model FILE --jobs FILE.json --out FILE.jsonl\n"
      "           [--corpus ...] [--deadline-ms N] [--resume] [--fsync]\n"
      "           [--profile-out FILE.jsonl] [--recorder-dir DIR]\n"
      "           run a batch of certification jobs on the scheduler:\n"
      "           per-job deadlines, Precise->Fast degradation, results\n"
      "           appended to the JSONL store (one object per job);\n"
      "           --resume skips jobs already present in the store and\n"
      "           repairs a crash-torn trailing record; --fsync makes\n"
      "           each record durable before the next job commits;\n"
      "           --profile-out streams per-job precision profiles,\n"
      "           --recorder-dir keeps a flight-recorder artifact\n"
      "           (recorder-<key>.json) for each job that errors or hits\n"
      "           its deadline, and --cert-dir DIR writes a proof\n"
      "           certificate (cert-<key>.json, replayable with\n"
      "           deept_check) for each DeepT job whose final probe\n"
      "           certified\n"
      "  work     --model FILE --jobs FILE.json --lease-dir DIR\n"
      "           [--corpus ...] [--workers N] [--ranges N]\n"
      "           [--worker-id ID] [--heartbeat-ms N] [--stale-ms N]\n"
      "           [--max-retries N] [--deadline-ms N] [--fsync]\n"
      "           [--out FILE.jsonl]\n"
      "           crash-tolerant multi-worker batch: jobs shard into\n"
      "           --ranges digest ranges, each guarded by a lease file\n"
      "           under --lease-dir (heartbeat every --heartbeat-ms;\n"
      "           leases silent for --stale-ms, default 5 heartbeats, are\n"
      "           reclaimed and their shard resumed). Run the same\n"
      "           command from N machines/processes, or let --workers N\n"
      "           fork N local workers. Transient job failures retry up\n"
      "           to --max-retries times on a deterministic exponential\n"
      "           backoff. --out merges the shards once every range is\n"
      "           done (equivalent to a separate `merge`)\n"
      "  merge    --lease-dir DIR --out FILE.jsonl [--ranges N]\n"
      "           merge the per-range shards of a `work` batch into one\n"
      "           canonical results JSONL (sorted by key, CRC-checked,\n"
      "           duplicate records collapsed; conflicting duplicates are\n"
      "           a store_corrupt error)\n"
      "  metrics  [--from stats.json]  print the metrics registry (or a\n"
      "           saved --stats-json artifact) in Prometheus text\n"
      "           exposition format\n"
      "  info     --model FILE\n"
      "\n"
      "exit codes: 0 success, 2 bad arguments, 3 model/store load\n"
      "failure, 4 deadline exceeded, 5 internal error\n"
      "\n"
      "execution (any command):\n"
      "  --threads N             worker threads for the shared pool\n"
      "                          (default: all cores, or DEEPT_THREADS);\n"
      "                          results are identical for any N\n"
      "  --isa scalar|avx2|avx512|native\n"
      "                          SIMD kernel table (default: widest the\n"
      "                          CPU supports, or DEEPT_ISA); results are\n"
      "                          bit-identical for any thread count within\n"
      "                          an ISA\n"
      "\n"
      "observability (any command):\n"
      "  --trace-out FILE.json   record spans, write Chrome trace_event\n"
      "                          JSON (chrome://tracing / Perfetto) and\n"
      "                          print a self-time summary to stderr\n"
      "  --stats-json FILE.json  write the metrics registry as JSON\n");
  return 2;
}

data::CorpusConfig corpusConfig(const std::string &Kind, size_t EmbedDim) {
  if (Kind == "yelp")
    return data::CorpusConfig::yelpLike(EmbedDim);
  if (Kind == "synonym")
    return data::CorpusConfig::synonymRich(EmbedDim);
  return data::CorpusConfig::sstLike(EmbedDim);
}

double parseNorm(const std::string &Name) {
  if (Name == "l1")
    return 1.0;
  if (Name == "linf")
    return tensor::Matrix::InfNorm;
  return 2.0;
}

int cmdTrain(const ArgParse &Args) {
  std::string Out = Args.get("out");
  if (Out.empty()) {
    std::fprintf(stderr, "error: train needs --out FILE\n");
    return 2;
  }
  size_t EmbedDim = Args.getInt("embed", 24);
  data::SyntheticCorpus Corpus(
      corpusConfig(Args.get("corpus", "sst"), EmbedDim));

  nn::TransformerConfig Cfg;
  Cfg.EmbedDim = EmbedDim;
  Cfg.NumHeads = Args.getInt("heads", 4);
  Cfg.HiddenDim = Args.getInt("hidden", EmbedDim);
  Cfg.NumLayers = Args.getInt("layers", 3);
  Cfg.MaxLen = 16;
  Cfg.LayerNormStdDiv = Args.has("std-layernorm");

  support::Rng Rng(Args.getInt("seed", 1));
  nn::TransformerModel Model =
      nn::TransformerModel::init(Cfg, Corpus.embeddings(), Rng);

  support::Rng DataRng(Args.getInt("seed", 1) + 1);
  auto Train = Corpus.sampleDataset(512, DataRng);
  auto Test = Corpus.sampleDataset(200, DataRng);
  nn::TrainOptions Opts;
  Opts.Steps = Args.getInt("steps", 60 * Cfg.NumLayers + 120);
  Opts.BatchSize = 16;
  if (Args.has("robust")) {
    Opts.SynonymSwapProb = 0.8;
    Opts.EmbedNoise = 0.03;
  }
  double TrainSeconds = 0.0;
  {
    support::ScopedAccum A(TrainSeconds);
    nn::trainTransformer(Model, Corpus, Train, Opts);
  }
  std::printf("trained %zu-layer model in %.1f s, accuracy %.1f%%\n",
              Cfg.NumLayers, TrainSeconds,
              100.0 * nn::accuracy(Model, Test));
  support::Error SaveErr;
  if (!nn::saveModel(Out, Model, &SaveErr)) {
    std::fprintf(stderr, "error: %s\n", SaveErr.what());
    return support::exitCodeFor(SaveErr.code());
  }
  std::printf("saved to %s\n", Out.c_str());
  return 0;
}

int loadModelOrFail(const ArgParse &Args, nn::TransformerModel &Model) {
  std::string Path = Args.get("model");
  if (Path.empty()) {
    std::fprintf(stderr, "error: missing --model FILE\n");
    return support::exitCodeFor(support::ErrorCode::BadArgument);
  }
  support::Error Err;
  if (!nn::loadModel(Path, Model, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.what());
    return support::exitCodeFor(Err.code());
  }
  return 0;
}

int cmdCertify(const ArgParse &Args) {
  nn::TransformerModel Model;
  if (int Rc = loadModelOrFail(Args, Model))
    return Rc;
  data::SyntheticCorpus Corpus(
      corpusConfig(Args.get("corpus", "sst"), Model.Config.EmbedDim));
  double P = parseNorm(Args.get("norm", "l2"));
  size_t Word = Args.getInt("word", 0);
  size_t Count = Args.getInt("sentences", 3);
  std::string Verifier = Args.get("verifier", "fast");
  double FixedEps = Args.getDouble("eps", 0.0);
  bool IsCrown = Verifier == "crown-baf" || Verifier == "crown-backward";

  std::string ProfileOut = Args.get("profile-out");
  if (!ProfileOut.empty() && IsCrown) {
    std::fprintf(stderr, "error: --profile-out needs a DeepT verifier "
                         "(fast, precise or combined)\n");
    return 2;
  }
  std::string CertOut = Args.get("cert-out");
  if (!CertOut.empty() && IsCrown) {
    std::fprintf(stderr, "error: --cert-out needs a DeepT verifier "
                         "(fast, precise or combined)\n");
    return 2;
  }

  support::FpPrecision Precision = support::FpPrecision::F64;
  if (Args.has("precision")) {
    std::string Err;
    if (!support::parseFpPrecision(Args.get("precision"), Precision, &Err)) {
      std::fprintf(stderr, "error: --precision %s\n", Err.c_str());
      return 2;
    }
    if (Precision == support::FpPrecision::F32 && IsCrown) {
      std::fprintf(stderr, "error: --precision f32 needs a DeepT verifier "
                           "(fast, precise or combined)\n");
      return 2;
    }
  }
  support::AppendFile ProfileFile;
  if (!ProfileOut.empty()) {
    support::Error Err;
    if (!ProfileFile.open(ProfileOut, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.what());
      return support::exitCodeFor(Err.code());
    }
  }
  support::AppendFile CertFile;
  if (!CertOut.empty()) {
    support::Error Err;
    if (!CertFile.open(CertOut, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.what());
      return support::exitCodeFor(Err.code());
    }
  }
  verify::PrecisionProfile Prof;
  Prof.Norm = Args.get("norm", "l2");
  Prof.Method = Verifier;
  verify::CertificateBuilder Cert;
  Cert.Data.Method = Verifier;
  Cert.Data.Norm = Args.get("norm", "l2");
  Cert.Data.P = P;

  size_t SentenceIdx = 0;
  // Margin of one query; every DeepT margin computation appends a
  // profile line when --profile-out is set (search mode profiles each
  // probe, so the JSONL shows how precision evolves along the search).
  auto MarginAt = [&](const data::Sentence &S, double R) -> double {
    if (IsCrown) {
      crown::CrownConfig Cfg;
      Cfg.Mode = Verifier == "crown-baf" ? crown::CrownMode::BaF
                                         : crown::CrownMode::Backward;
      crown::CrownOutcome O =
          crown::CrownVerifier(Model, Cfg)
              .certifyMarginLpBall(S.Tokens, Word, P, R, S.Label);
      return O.OutOfMemory ? -HUGE_VAL : O.MarginLowerBound;
    }
    verify::VerifierConfig Cfg;
    Cfg.NoiseReductionBudget = 600;
    if (Verifier == "precise")
      Cfg.Method = zono::DotMethod::Precise;
    if (Verifier == "combined")
      Cfg.PreciseLastLayerOnly = true;
    Cfg.Precision = Precision;
    if (ProfileFile.isOpen())
      Cfg.Profile = &Prof;
    if (CertFile.isOpen())
      Cfg.Certificate = &Cert;
    verify::DeepTVerifier V(Model, Cfg);
    tensor::Matrix X = Model.embed(S.Tokens);
    zono::Zonotope In = zono::Zonotope::lpBallOnRow(X, Word, P, R);
    double M = V.certifyMargin(In, S.Label);
    if (ProfileFile.isOpen()) {
      Prof.Query = "s" + std::to_string(SentenceIdx) + "-w" +
                   std::to_string(Word);
      Prof.Eps = R;
      ProfileFile.append(Prof.toJsonLine() + "\n", false);
    }
    if (CertFile.isOpen()) {
      Cert.Data.Query = "s" + std::to_string(SentenceIdx) + "-w" +
                        std::to_string(Word);
      std::string Line = Cert.Data.toJson() + "\n";
      support::Error Err;
      if (!CertFile.append(Line, false, &Err)) {
        std::fprintf(stderr, "error: %s\n", Err.what());
      } else {
        auto &MR = support::Metrics::global();
        MR.counter("cert.emitted").add(1.0);
        MR.counter("cert.bytes").add(static_cast<double>(Line.size()));
      }
    }
    return M;
  };

  support::Rng Rng(Args.getInt("seed", 2));
  size_t Done = 0;
  while (Done < Count) {
    data::Sentence S = Corpus.sampleSentence(Rng);
    if (Model.classify(S.Tokens) != S.Label || Word >= S.Tokens.size())
      continue;
    ++Done;
    SentenceIdx = Done;
    double Seconds = 0.0;
    if (FixedEps > 0.0) {
      double M;
      {
        support::ScopedAccum A(Seconds);
        M = MarginAt(S, FixedEps);
      }
      std::printf("sentence %zu (%zu words, %s): margin %.5g at %s eps "
                  "%.5g around word %zu -> %s  (%.2f s, verifier %s)\n",
                  Done, S.Tokens.size(), S.Label ? "positive" : "negative",
                  M, Args.get("norm", "l2").c_str(), FixedEps, Word,
                  M > 0.0 ? "CERTIFIED" : "falsified", Seconds,
                  Verifier.c_str());
      continue;
    }
    double R;
    {
      support::ScopedAccum A(Seconds);
      R = verify::certifiedRadius(
          [&](double Radius) { return MarginAt(S, Radius) > 0.0; });
    }
    std::printf("sentence %zu (%zu words, %s): certified %s radius %.5g "
                "around word %zu  (%.2f s, verifier %s)\n",
                Done, S.Tokens.size(), S.Label ? "positive" : "negative",
                Args.get("norm", "l2").c_str(), R, Word, Seconds,
                Verifier.c_str());
  }
  return 0;
}

int cmdSynonym(const ArgParse &Args) {
  nn::TransformerModel Model;
  if (int Rc = loadModelOrFail(Args, Model))
    return Rc;
  data::SyntheticCorpus Corpus(
      corpusConfig(Args.get("corpus", "synonym"), Model.Config.EmbedDim));
  verify::VerifierConfig Cfg;
  Cfg.NoiseReductionBudget = 600;
  verify::DeepTVerifier V(Model, Cfg);
  support::Rng Rng(Args.getInt("seed", 3));
  size_t Count = Args.getInt("count", 10);
  size_t Certified = 0, Done = 0;
  while (Done < Count) {
    data::Sentence S = Corpus.sampleSentence(Rng);
    if (Model.classify(S.Tokens) != S.Label)
      continue;
    ++Done;
    size_t Combos = attack::countSynonymCombinations(Corpus, S);
    double Seconds = 0.0;
    bool Ok;
    {
      support::ScopedAccum A(Seconds);
      Ok = V.certifySynonymBox(Corpus, S, S.Label);
    }
    Certified += Ok;
    std::printf("sentence %zu: %zu combinations -> %s (%.2f s)\n", Done,
                Combos, Ok ? "CERTIFIED" : "not certified", Seconds);
  }
  std::printf("certified %zu / %zu sentences\n", Certified, Done);
  return 0;
}

int cmdAttack(const ArgParse &Args) {
  nn::TransformerModel Model;
  if (int Rc = loadModelOrFail(Args, Model))
    return Rc;
  data::SyntheticCorpus Corpus(
      corpusConfig(Args.get("corpus", "sst"), Model.Config.EmbedDim));
  double P = parseNorm(Args.get("norm", "l2"));
  size_t Word = Args.getInt("word", 0);
  support::Rng Rng(Args.getInt("seed", 4));
  data::Sentence S;
  do {
    S = Corpus.sampleSentence(Rng);
  } while (Model.classify(S.Tokens) != S.Label || Word >= S.Tokens.size());
  double Seconds = 0.0;
  double R;
  {
    support::ScopedAccum A(Seconds);
    R = attack::minimalAdversarialRadiusTransformer(Model, S.Tokens, Word,
                                                    P, S.Label);
  }
  std::printf("smallest adversarial %s radius found by PGD around word "
              "%zu: %.5g (%.2f s)\n",
              Args.get("norm", "l2").c_str(), Word, R, Seconds);
  return 0;
}

/// The operator-facing end-of-run health line: degraded IO (certificate
/// write failures, store records dropped for CRC mismatch) and the
/// coordination/retry counters, without scraping --stats-json.
void printHealthLine() {
  support::Metrics &M = support::Metrics::global();
  std::printf("health: %.0f cert write failures, %.0f store crc drops, "
              "%.0f retries, %.0f leases claimed, %.0f leases reclaimed\n",
              M.counterValue("cert.write_failures"),
              M.counterValue("store.crc_dropped"),
              M.counterValue("sched.retries"),
              M.counterValue("coord.leases_claimed"),
              M.counterValue("coord.leases_reclaimed"));
}

int cmdBatch(const ArgParse &Args) {
  nn::TransformerModel Model;
  if (int Rc = loadModelOrFail(Args, Model))
    return Rc;
  std::string JobsPath = Args.get("jobs");
  std::string OutPath = Args.get("out");
  if (JobsPath.empty() || OutPath.empty()) {
    std::fprintf(stderr,
                 "error: batch needs --jobs FILE.json and --out FILE.jsonl\n");
    return 2;
  }
  data::SyntheticCorpus Corpus(
      corpusConfig(Args.get("corpus", "sst"), Model.Config.EmbedDim));

  verify::JobQueue Queue;
  std::string Err;
  if (!verify::JobQueue::fromJsonFile(JobsPath, &Corpus, Queue, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return support::exitCodeFor(support::ErrorCode::BadArgument);
  }

  verify::SchedulerOptions SO;
  long DeadlineMs = 0;
  if (!Args.getIntStrict("deadline-ms", DeadlineMs, &Err) || DeadlineMs < 0) {
    std::fprintf(stderr, "error: %s\n",
                 Err.empty() ? "--deadline-ms must be >= 0" : Err.c_str());
    return 2;
  }
  SO.DefaultDeadlineMs = DeadlineMs;
  long MaxRetries = 0;
  if (!Args.getIntStrict("max-retries", MaxRetries, &Err) || MaxRetries < 0) {
    std::fprintf(stderr, "error: %s\n",
                 Err.empty() ? "--max-retries must be >= 0" : Err.c_str());
    return 2;
  }
  SO.MaxRetries = static_cast<int>(MaxRetries);
  SO.JsonlPath = OutPath;
  SO.Resume = Args.has("resume");
  SO.Fsync = Args.has("fsync");
  SO.ProfileJsonlPath = Args.get("profile-out");
  SO.RecorderDir = Args.get("recorder-dir");
  if (!SO.RecorderDir.empty())
    ::mkdir(SO.RecorderDir.c_str(), 0755); // existing directory is fine
  SO.CertDir = Args.get("cert-dir");
  if (!SO.CertDir.empty())
    ::mkdir(SO.CertDir.c_str(), 0755); // existing directory is fine

  verify::Scheduler Sched(Model, SO);
  support::Timer Timer;
  std::vector<verify::JobResult> Results;
  try {
    Results = Sched.run(Queue);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "error: %s\n", E.what());
    return support::exitCodeFor(support::codeOf(E));
  }
  double Seconds = Timer.seconds();

  size_t Counts[4] = {0, 0, 0, 0};
  size_t Certified = 0;
  for (const verify::JobResult &R : Results) {
    ++Counts[static_cast<size_t>(R.Status)];
    Certified += R.Certified;
  }
  size_t Ran = Results.size() - Counts[3];
  std::printf("batch: %zu jobs (%zu ok, %zu degraded, %zu error, "
              "%zu skipped), %zu certified\n",
              Results.size(), Counts[0], Counts[1], Counts[2], Counts[3],
              Certified);
  std::printf("%.2f s wall, %.1f jobs/s on %zu threads -> %s\n", Seconds,
              Ran > 0 && Seconds > 0 ? static_cast<double>(Ran) / Seconds
                                     : 0.0,
              support::ThreadPool::global().threadCount(), OutPath.c_str());
  printHealthLine();
  return 0;
}

int runMerge(const std::string &LeaseDir, size_t Ranges,
             const std::string &OutPath) {
  verify::MergeReport Rep;
  support::Error Err;
  if (!verify::mergeShards(LeaseDir, Ranges, OutPath, Rep, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.what());
    return support::exitCodeFor(Err.code() == support::ErrorCode::Ok
                                    ? support::ErrorCode::Internal
                                    : Err.code());
  }
  std::printf("merge: %zu records from %zu shards -> %s (%zu duplicates "
              "collapsed, %zu crc-dropped, %zu malformed dropped)\n",
              Rep.Records, Rep.Shards, OutPath.c_str(),
              Rep.DuplicatesCollapsed, Rep.DroppedCrc, Rep.DroppedMalformed);
  return 0;
}

int cmdMerge(const ArgParse &Args) {
  std::string LeaseDir = Args.get("lease-dir");
  std::string OutPath = Args.get("out");
  if (LeaseDir.empty() || OutPath.empty()) {
    std::fprintf(stderr,
                 "error: merge needs --lease-dir DIR and --out FILE.jsonl\n");
    return 2;
  }
  std::string Err;
  long Ranges = 0;
  if (!Args.getIntStrict("ranges", Ranges, &Err) || Ranges < 0) {
    std::fprintf(stderr, "error: %s\n",
                 Err.empty() ? "--ranges must be >= 0" : Err.c_str());
    return 2;
  }
  return runMerge(LeaseDir, static_cast<size_t>(Ranges), OutPath);
}

/// The raw command line, stashed by main() so the --workers fork path can
/// re-exec this binary with a per-child worker id.
int GArgc = 0;
const char *const *GArgv = nullptr;

int cmdWork(const ArgParse &Args) {
  std::string JobsPath = Args.get("jobs");
  std::string LeaseDir = Args.get("lease-dir");
  if (JobsPath.empty() || LeaseDir.empty()) {
    std::fprintf(
        stderr,
        "error: work needs --jobs FILE.json and --lease-dir DIR\n");
    return 2;
  }
  std::string Err;
  long Workers = 1, Ranges = 8, HeartbeatMs = 1000, StaleMs = 0,
       MaxRetries = 2, DeadlineMs = 0;
  struct IntFlag {
    const char *Name;
    long *Out;
    long Min;
  } Flags[] = {{"workers", &Workers, 1},      {"ranges", &Ranges, 1},
               {"heartbeat-ms", &HeartbeatMs, 1}, {"stale-ms", &StaleMs, 0},
               {"max-retries", &MaxRetries, 0},
               {"deadline-ms", &DeadlineMs, 0}};
  for (const IntFlag &F : Flags) {
    if (!Args.getIntStrict(F.Name, *F.Out, &Err) || *F.Out < F.Min) {
      if (Err.empty())
        Err = "--" + std::string(F.Name) + " must be >= " +
              std::to_string(F.Min);
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 2;
    }
  }
  ::mkdir(LeaseDir.c_str(), 0755); // existing directory is fine
  std::string OutPath = Args.get("out");

  if (Workers > 1) {
    // fork + execv of this binary per worker: exec resets the process, so
    // the children never inherit the parent's (possibly threaded) state.
    std::string BaseId = Args.get("worker-id");
    if (BaseId.empty())
      BaseId = "w" + std::to_string(static_cast<long>(::getpid()));
    std::vector<std::string> Base;
    for (int I = 0; I < GArgc; ++I) {
      std::string A = GArgv[I];
      // Children are single workers with their own ids; the merge (--out)
      // stays with the parent.
      if (A == "--workers" || A == "--worker-id" || A == "--out") {
        ++I;
        continue;
      }
      Base.push_back(A);
    }
    std::vector<pid_t> Pids;
    for (long K = 0; K < Workers; ++K) {
      pid_t Pid = ::fork();
      if (Pid < 0) {
        std::perror("fork");
        break;
      }
      if (Pid == 0) {
        std::vector<std::string> ChildArgs = Base;
        ChildArgs.push_back("--workers");
        ChildArgs.push_back("1");
        ChildArgs.push_back("--worker-id");
        ChildArgs.push_back(BaseId + "-" + std::to_string(K));
        std::vector<char *> Cv;
        for (std::string &S : ChildArgs)
          Cv.push_back(const_cast<char *>(S.c_str()));
        Cv.push_back(nullptr);
        ::execv("/proc/self/exe", Cv.data());
        ::_exit(127);
      }
      Pids.push_back(Pid);
    }
    int Worst = Pids.empty() ? 5 : 0;
    for (pid_t Pid : Pids) {
      int St = 0;
      ::waitpid(Pid, &St, 0);
      int Rc = WIFEXITED(St) ? WEXITSTATUS(St)
                             : 128 + (WIFSIGNALED(St) ? WTERMSIG(St) : 0);
      if (Rc > Worst)
        Worst = Rc;
    }
    // A failed child is not a failed batch: if every range still reached
    // its done marker (survivors picked up the crashed worker's ranges),
    // the batch converged.
    bool AllDone = true;
    for (long R = 0; R < Ranges; ++R)
      if (!support::fileExists(
              support::donePath(LeaseDir, static_cast<size_t>(R))))
        AllDone = false;
    if (!AllDone)
      return Worst ? Worst : support::exitCodeFor(
                                 support::ErrorCode::Internal);
    if (Worst)
      std::fprintf(stderr,
                   "warning: a worker exited with status %d but the batch "
                   "converged\n",
                   Worst);
    if (!OutPath.empty())
      return runMerge(LeaseDir, static_cast<size_t>(Ranges), OutPath);
    return 0;
  }

  nn::TransformerModel Model;
  if (int Rc = loadModelOrFail(Args, Model))
    return Rc;
  data::SyntheticCorpus Corpus(
      corpusConfig(Args.get("corpus", "sst"), Model.Config.EmbedDim));
  verify::JobQueue Queue;
  if (!verify::JobQueue::fromJsonFile(JobsPath, &Corpus, Queue, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return support::exitCodeFor(support::ErrorCode::BadArgument);
  }

  verify::CoordinationOptions CO;
  CO.LeaseDir = LeaseDir;
  CO.Ranges = static_cast<size_t>(Ranges);
  CO.WorkerId = Args.get("worker-id");
  CO.HeartbeatMs = HeartbeatMs;
  CO.StaleAfterMs = StaleMs;
  CO.Sched.DefaultDeadlineMs = DeadlineMs;
  CO.Sched.Fsync = Args.has("fsync");
  CO.Sched.MaxRetries = static_cast<int>(MaxRetries);
  CO.Sched.RecorderDir = Args.get("recorder-dir");
  if (!CO.Sched.RecorderDir.empty())
    ::mkdir(CO.Sched.RecorderDir.c_str(), 0755);
  CO.Sched.CertDir = Args.get("cert-dir");
  if (!CO.Sched.CertDir.empty())
    ::mkdir(CO.Sched.CertDir.c_str(), 0755);

  support::Timer Timer;
  verify::Worker Worker(Model, Queue, CO);
  verify::WorkerReport Rep = Worker.run();
  std::printf("work: %zu ranges completed, %zu leases reclaimed, %zu jobs "
              "(%zu ok, %zu degraded, %zu error, %zu skipped), %zu "
              "certified, %.2f s wall\n",
              Rep.RangesCompleted, Rep.LeasesReclaimed, Rep.Jobs, Rep.JobsOk,
              Rep.JobsDegraded, Rep.JobsError, Rep.JobsSkipped, Rep.Certified,
              Timer.seconds());
  printHealthLine();
  if (!OutPath.empty())
    return runMerge(LeaseDir, CO.Ranges, OutPath);
  return 0;
}

int cmdInfo(const ArgParse &Args) {
  nn::TransformerModel Model;
  if (int Rc = loadModelOrFail(Args, Model))
    return Rc;
  const nn::TransformerConfig &C = Model.Config;
  size_t Params = 0;
  for (const tensor::Matrix *M : Model.parameters())
    Params += M->size();
  std::printf("layers:        %zu\n", C.NumLayers);
  std::printf("embedding dim: %zu\n", C.EmbedDim);
  std::printf("heads:         %zu (head dim %zu)\n", C.NumHeads,
              C.headDim());
  std::printf("hidden dim:    %zu\n", C.HiddenDim);
  std::printf("layer norm:    %s\n",
              C.LayerNormStdDiv ? "standard (with std division)"
                                : "paper default (no std division)");
  std::printf("vocab size:    %zu\n", C.VocabSize);
  std::printf("parameters:    %zu (plus frozen embeddings)\n", Params);
  return 0;
}

int cmdMetrics(const ArgParse &Args) {
  std::string From = Args.get("from");
  if (From.empty()) {
    // The live registry of this process -- the same text a serving
    // daemon would mount at /metrics.
    std::fputs(support::prometheusText(support::Metrics::global()).c_str(),
               stdout);
    return 0;
  }
  std::ifstream In(From, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", From.c_str());
    return support::exitCodeFor(support::ErrorCode::IoError);
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  support::JsonValue Doc;
  std::string Err;
  if (!support::parseJson(Buf.str(), Doc, &Err)) {
    std::fprintf(stderr, "error: %s: %s\n", From.c_str(), Err.c_str());
    return support::exitCodeFor(support::ErrorCode::BadArgument);
  }
  std::string Text;
  if (!support::prometheusFromStatsJson(Doc, Text, &Err)) {
    std::fprintf(stderr, "error: %s: %s\n", From.c_str(), Err.c_str());
    return support::exitCodeFor(support::ErrorCode::BadArgument);
  }
  std::fputs(Text.c_str(), stdout);
  return 0;
}

int dispatch(const std::string &Cmd, const ArgParse &Args) {
  if (Cmd == "train")
    return cmdTrain(Args);
  if (Cmd == "certify")
    return cmdCertify(Args);
  if (Cmd == "synonym")
    return cmdSynonym(Args);
  if (Cmd == "attack")
    return cmdAttack(Args);
  if (Cmd == "batch")
    return cmdBatch(Args);
  if (Cmd == "work")
    return cmdWork(Args);
  if (Cmd == "merge")
    return cmdMerge(Args);
  if (Cmd == "metrics")
    return cmdMetrics(Args);
  if (Cmd == "info")
    return cmdInfo(Args);
  return usage();
}

/// Writes the metrics registry (plus which command ran and the pool's
/// thread count) to \p Path.
bool writeStatsJson(const std::string &Path, const std::string &Cmd) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out << "{\"command\":\"" << support::jsonEscape(Cmd) << "\",\"threads\":"
      << support::ThreadPool::global().threadCount() << ",\"isa\":\""
      << tensor::isaName(tensor::currentIsa())
      << "\",\"metrics\":" << support::Metrics::global().toJson() << "}\n";
  return static_cast<bool>(Out);
}

} // namespace

int main(int Argc, char **Argv) {
  GArgc = Argc;
  GArgv = Argv;
  ArgParse Args(Argc, Argv, {"std-layernorm", "robust", "resume", "fsync"});
  if (Args.positional().empty())
    return usage();
  const std::string &Cmd = Args.positional().front();

  std::string TraceOut = Args.get("trace-out");
  std::string StatsOut = Args.get("stats-json");
  if (!TraceOut.empty())
    support::Trace::setEnabled(true);
  if (Args.has("threads")) {
    size_t Threads = 0;
    std::string Err;
    if (!support::parseThreadCount(Args.get("threads"), Threads, &Err)) {
      std::fprintf(stderr, "error: --threads %s\n", Err.c_str());
      return 2;
    }
    support::ThreadPool::global().setThreadCount(Threads);
  }
  if (Args.has("isa")) {
    tensor::Isa I = tensor::Isa::Scalar;
    std::string Err;
    if (!tensor::parseIsa(Args.get("isa"), I, &Err)) {
      std::fprintf(stderr, "error: --isa %s\n", Err.c_str());
      return 2;
    }
    if (!tensor::setIsa(I, &Err)) {
      std::fprintf(stderr, "error: --isa %s\n", Err.c_str());
      return 2;
    }
  }

  int Rc;
  try {
    Rc = dispatch(Cmd, Args);
  } catch (const std::exception &E) {
    // Uncaught failures still leave with their taxonomy's exit class
    // (5 for anything unclassified) instead of a crash.
    std::fprintf(stderr, "error: %s\n", E.what());
    Rc = support::exitCodeFor(support::codeOf(E));
  }

  if (!TraceOut.empty()) {
    if (support::Trace::writeChromeJson(TraceOut))
      std::fprintf(stderr, "wrote %zu trace events to %s\n%s",
                   support::Trace::eventCount(), TraceOut.c_str(),
                   support::Trace::selfTimeSummary().c_str());
    else {
      std::fprintf(stderr, "error: cannot write trace to %s\n",
                   TraceOut.c_str());
      Rc = Rc ? Rc : 1;
    }
  }
  if (!StatsOut.empty()) {
    if (!writeStatsJson(StatsOut, Cmd)) {
      std::fprintf(stderr, "error: cannot write stats to %s\n",
                   StatsOut.c_str());
      Rc = Rc ? Rc : 1;
    }
  }
  return Rc;
}
