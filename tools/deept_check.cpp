//===- tools/deept_check.cpp - Certificate replay checker ------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The independent replay checker for DeepT proof certificates. Links
/// only src/check (a ~300-line directed-rounding interval core) and the
/// support layer -- no tensor, zonotope or verifier code -- so a kernel
/// bug in the producer cannot also hide in the replay.
///
///   deept_check [--digest] [--quiet] FILE...
///
/// Each FILE is a certificate artifact: either a single-line .json (one
/// envelope) or a .jsonl with one envelope per line. Every certificate
/// is replayed; the first violation stops the run with the taxonomy's
/// typed exit codes:
///
///   0  every certificate replays
///   2  usage error
///   3  malformed artifact (JSON, envelope, CRC, schema)   [store_corrupt]
///   5  replay rejection (non-enclosure, non-finite value,
///      bookkeeping or verdict mismatch)          [unsound_abstraction]
///
/// --digest prints the ISA-invariant semantic digest line per certificate
/// instead of the OK line; CI diffs these across ISAs (raw payloads are
/// only bit-identical within one ISA).
///
//===----------------------------------------------------------------------===//

#include "check/CertCheck.h"
#include "support/Error.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace deept;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: deept_check [--digest] [--quiet] FILE...\n"
               "  Replays DeepT proof certificates (.json or .jsonl) with\n"
               "  directed-rounding interval arithmetic.\n"
               "  --digest  print the ISA-invariant digest per certificate\n"
               "  --quiet   print nothing on success\n");
  return support::exitCodeFor(support::ErrorCode::BadArgument);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Digest = false, Quiet = false;
  std::vector<std::string> Files;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--digest")
      Digest = true;
    else if (A == "--quiet")
      Quiet = true;
    else if (A == "--help" || A == "-h")
      return usage();
    else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "deept_check: unknown flag '%s'\n", A.c_str());
      return usage();
    } else
      Files.push_back(A);
  }
  if (Files.empty())
    return usage();

  size_t Checked = 0;
  for (const std::string &Path : Files) {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "deept_check: cannot open %s\n", Path.c_str());
      return support::exitCodeFor(support::ErrorCode::StoreCorrupt);
    }
    std::string Line;
    size_t LineNo = 0;
    while (std::getline(In, Line)) {
      ++LineNo;
      bool Blank = true;
      for (char C : Line)
        if (C != ' ' && C != '\t' && C != '\r')
          Blank = false;
      if (Blank)
        continue;
      try {
        check::CertificateSummary S = check::checkCertificate(Line);
        ++Checked;
        if (Digest)
          std::printf("%s\n", check::semanticDigest(S).c_str());
        else if (!Quiet)
          std::printf("OK %s:%zu query=%s kind=%s isa=%s threads=%zu "
                      "certified=%d\n",
                      Path.c_str(), LineNo, S.Query.c_str(), S.Kind.c_str(),
                      S.Isa.c_str(), S.Threads, S.Certified ? 1 : 0);
      } catch (const std::exception &E) {
        std::fprintf(stderr, "deept_check: REJECT %s:%zu: %s\n", Path.c_str(),
                     LineNo, E.what());
        return support::exitCodeFor(support::codeOf(E));
      }
    }
  }
  if (Checked == 0) {
    std::fprintf(stderr, "deept_check: no certificates found\n");
    return support::exitCodeFor(support::ErrorCode::StoreCorrupt);
  }
  if (!Quiet && !Digest)
    std::printf("deept_check: %zu certificate(s) replayed\n", Checked);
  return 0;
}
