# SmokeFault.cmake - robustness drill of the fault-injection harness.
#
# Trains a tiny model, then drives deept_cli through the DEEPT_FAULTS
# environment variable: an injected short read must fail the model load
# with exit class 3, a corrupted model file must be rejected the same
# way, an injected NaN in a propagation must surface as a structured
# unsound_abstraction batch record (never `certified`), and
# deept_json_validate must reject a store containing a bare non-finite
# token. The byte-precise corruption corpus lives in
# tests/serialize_test.cpp; this drill checks the CLI surface. Run via:
#   cmake -DDEEPT_CLI=... -DJSON_VALIDATE=... -DWORK_DIR=... -P SmokeFault.cmake

foreach(Var DEEPT_CLI JSON_VALIDATE WORK_DIR)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "SmokeFault.cmake needs -D${Var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(Model "${WORK_DIR}/fault.dptm")
set(Jobs "${WORK_DIR}/jobs.json")
set(Results "${WORK_DIR}/results.jsonl")

execute_process(
  COMMAND "${DEEPT_CLI}" train --out "${Model}" --layers 1 --embed 8
          --heads 2 --hidden 8 --steps 5
  RESULT_VARIABLE Rc)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "deept_cli train failed (rc=${Rc})")
endif()

# Drill 1: an injected short read fails the load with exit class 3
# (model/store load failure) and a typed error -- not a crash, not a 0.
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env DEEPT_FAULTS=serialize.read:1:short
          "${DEEPT_CLI}" info --model "${Model}"
  RESULT_VARIABLE Rc ERROR_VARIABLE ErrOut OUTPUT_QUIET)
if(NOT Rc EQUAL 3)
  message(FATAL_ERROR
      "injected short read: want rc=3, got rc=${Rc}: ${ErrOut}")
endif()
if(NOT ErrOut MATCHES "model_corrupt")
  message(FATAL_ERROR "missing typed model_corrupt error, got: ${ErrOut}")
endif()

# Disarmed, the same model loads fine.
execute_process(
  COMMAND "${DEEPT_CLI}" info --model "${Model}"
  RESULT_VARIABLE Rc OUTPUT_QUIET)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "clean info failed after the drill (rc=${Rc})")
endif()

# Drill 2: a genuinely corrupted model file is rejected with the same
# exit class, and a missing one with model_not_found.
set(Corrupt "${WORK_DIR}/corrupt.dptm")
file(WRITE "${Corrupt}" "this is not a model file at all")
execute_process(
  COMMAND "${DEEPT_CLI}" info --model "${Corrupt}"
  RESULT_VARIABLE Rc ERROR_VARIABLE ErrOut OUTPUT_QUIET)
if(NOT Rc EQUAL 3)
  message(FATAL_ERROR "corrupt model: want rc=3, got rc=${Rc}: ${ErrOut}")
endif()
if(NOT ErrOut MATCHES "model_corrupt")
  message(FATAL_ERROR "missing model_corrupt on garbage file: ${ErrOut}")
endif()
execute_process(
  COMMAND "${DEEPT_CLI}" info --model "${WORK_DIR}/does_not_exist.dptm"
  RESULT_VARIABLE Rc ERROR_VARIABLE ErrOut OUTPUT_QUIET)
if(NOT Rc EQUAL 3)
  message(FATAL_ERROR "missing model: want rc=3, got rc=${Rc}")
endif()
if(NOT ErrOut MATCHES "model_not_found")
  message(FATAL_ERROR "missing model_not_found error, got: ${ErrOut}")
endif()

# Drill 3: an injected NaN in the propagation surfaces as a structured
# unsound_abstraction record. The batch itself completes (rc=0) with the
# job tagged error, and the poisoned job is never certified.
file(WRITE "${Jobs}" [=[
{"jobs":[
  {"id":"poisoned","seed":3,"word":0,"norm":"l2","eps":0.02,"method":"fast"}
]}
]=])
file(REMOVE "${Results}")
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env DEEPT_FAULTS=verify.propagate:1:nan
          "${DEEPT_CLI}" batch --model "${Model}" --jobs "${Jobs}"
          --out "${Results}"
  RESULT_VARIABLE Rc OUTPUT_VARIABLE Out ERROR_VARIABLE ErrOut)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR
      "batch under injected NaN must complete (rc=${Rc}): ${ErrOut}")
endif()
if(NOT Out MATCHES "1 jobs \\(0 ok, 0 degraded, 1 error, 0 skipped\\), 0 certified")
  message(FATAL_ERROR "unexpected poisoned-batch summary: ${Out}")
endif()
file(READ "${Results}" StoreText)
if(NOT StoreText MATCHES "\"error_code\":\"unsound_abstraction\"")
  message(FATAL_ERROR "store lacks unsound_abstraction record: ${StoreText}")
endif()
if(StoreText MATCHES "\"certified\":true")
  message(FATAL_ERROR
      "a poisoned propagation was certified -- soundness guard failed: "
      "${StoreText}")
endif()
execute_process(
  COMMAND "${JSON_VALIDATE}" --jsonl --require-key key "${Results}"
  RESULT_VARIABLE Rc)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "poisoned store is not valid JSONL (rc=${Rc})")
endif()

# Drill 4: the store stays machine-readable even for non-finite margins
# (they serialize as null), and a writer that leaked a bare non-finite
# token would be caught by the validator.
file(WRITE "${WORK_DIR}/bad_store.jsonl" "{\"key\":\"k\",\"margin\":nan}\n")
execute_process(
  COMMAND "${JSON_VALIDATE}" --jsonl --require-key key
          "${WORK_DIR}/bad_store.jsonl"
  RESULT_VARIABLE Rc OUTPUT_QUIET ERROR_QUIET)
if(Rc EQUAL 0)
  message(FATAL_ERROR "json_validate accepted a bare nan token")
endif()

# Drill 5: a malformed DEEPT_FAULTS spec is ignored with a warning -- an
# operator typo must never change program behavior.
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env DEEPT_FAULTS=serialize.read:1:bogus
          "${DEEPT_CLI}" info --model "${Model}"
  RESULT_VARIABLE Rc ERROR_VARIABLE ErrOut OUTPUT_QUIET)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR
      "malformed DEEPT_FAULTS changed behavior (rc=${Rc}): ${ErrOut}")
endif()
if(NOT ErrOut MATCHES "ignoring DEEPT_FAULTS")
  message(FATAL_ERROR "missing malformed-spec warning, got: ${ErrOut}")
endif()

message(STATUS "SmokeFault: all robustness drills passed")
