//===- tools/json_validate.cpp - JSON well-formedness checker --*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
// Validates that each argument file parses as standard JSON (RFC 8259),
// using the same support/Json parser the tests use. The smoke test runs
// it over deept_cli's --trace-out / --stats-json artifacts.
//
//   deept_json_validate FILE [FILE...]
//   deept_json_validate --require-key traceEvents FILE
//
// --require-key KEY additionally demands a top-level object member named
// KEY in every following file.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace deept;

int main(int Argc, char **Argv) {
  std::string RequiredKey;
  int Checked = 0;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--require-key") == 0) {
      if (++I >= Argc) {
        std::fprintf(stderr, "error: --require-key needs an argument\n");
        return 2;
      }
      RequiredKey = Argv[I];
      continue;
    }
    std::ifstream In(Argv[I], std::ios::binary);
    if (!In) {
      std::fprintf(stderr, "%s: cannot open\n", Argv[I]);
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    std::string Text = Buf.str();
    support::JsonValue Doc;
    std::string Err;
    if (!support::parseJson(Text, Doc, &Err)) {
      std::fprintf(stderr, "%s: invalid JSON: %s\n", Argv[I], Err.c_str());
      return 1;
    }
    if (!RequiredKey.empty() && !Doc.find(RequiredKey)) {
      std::fprintf(stderr, "%s: missing top-level key \"%s\"\n", Argv[I],
                   RequiredKey.c_str());
      return 1;
    }
    std::printf("%s: valid JSON (%zu bytes)\n", Argv[I], Text.size());
    ++Checked;
  }
  if (Checked == 0) {
    std::fprintf(stderr,
                 "usage: deept_json_validate [--require-key KEY] FILE...\n");
    return 2;
  }
  return 0;
}
