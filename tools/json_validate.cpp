//===- tools/json_validate.cpp - JSON well-formedness checker --*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
// Validates that each argument file parses as standard JSON (RFC 8259),
// using the same support/Json parser the tests use. The smoke tests run
// it over deept_cli's --trace-out / --stats-json artifacts, the bench
// BENCH_*.json reports, the scheduler's JSONL result stores, and the
// precision-observability artifacts (--profile-out JSONL and
// flight-recorder dumps).
//
//   deept_json_validate FILE [FILE...]
//   deept_json_validate --require-key traceEvents FILE
//   deept_json_validate --jsonl --require-key key results.jsonl
//   deept_json_validate --jsonl --schema profile profiles.jsonl
//   deept_json_validate --schema recorder recorder-k.json
//   cat profiles.jsonl | deept_json_validate --jsonl --schema profile -
//
// --require-key KEY additionally demands a top-level object member named
// KEY in every following file. --jsonl switches to line-delimited mode
// for the following files: every non-empty line must parse as one JSON
// document (and satisfy --require-key individually). --schema NAME
// checks the document shape of the named artifact: "profile" (query,
// margin_width, checkpoints[], attribution[]), "recorder" (job,
// events[] with t_ms and kind per event), "certificate" (the proof
// certificate envelope of verify/Certificate.h; structure only -- the
// CRC and the interval replay belong to deept_check) or "lease" (the
// coordination lease file of support/Lease.h). "-" reads a file from
// stdin.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace deept;

namespace {

/// Shape check for one parsed artifact document; fills \p Why on failure.
bool checkSchema(const support::JsonValue &Doc, const std::string &Schema,
                 std::string &Why) {
  auto Need = [&](const char *Key, const support::JsonValue **Out =
                                       nullptr) {
    const support::JsonValue *V = Doc.find(Key);
    if (!V) {
      Why = std::string("missing key \"") + Key + "\"";
      return false;
    }
    if (Out)
      *Out = V;
    return true;
  };
  if (Schema == "profile") {
    const support::JsonValue *Checkpoints = nullptr, *Attr = nullptr;
    if (!Need("query") || !Need("margin_width") ||
        !Need("checkpoints", &Checkpoints) ||
        !Need("attribution", &Attr))
      return false;
    if (!Checkpoints->isArray()) {
      Why = "\"checkpoints\" must be an array";
      return false;
    }
    if (!Attr->isArray()) {
      Why = "\"attribution\" must be an array";
      return false;
    }
    for (const support::JsonValue &C : Checkpoints->Items)
      if (!C.find("site") || !C.find("mean_width")) {
        Why = "checkpoint entries need \"site\" and \"mean_width\"";
        return false;
      }
    for (const support::JsonValue &G : Attr->Items)
      if (!G.find("group") || !G.find("width")) {
        Why = "attribution entries need \"group\" and \"width\"";
        return false;
      }
    return true;
  }
  if (Schema == "recorder") {
    const support::JsonValue *Events = nullptr;
    if (!Need("job") || !Need("events", &Events))
      return false;
    if (!Events->isArray()) {
      Why = "\"events\" must be an array";
      return false;
    }
    for (const support::JsonValue &E : Events->Items)
      if (!E.find("t_ms") || !E.find("kind")) {
        Why = "recorder events need \"t_ms\" and \"kind\"";
        return false;
      }
    return true;
  }
  if (Schema == "certificate") {
    // Structural check of the envelope only; the CRC and the actual
    // interval replay are deept_check's job.
    const support::JsonValue *Payload = nullptr;
    if (!Need("deept_cert") || !Need("isa") || !Need("threads") ||
        !Need("crc32") || !Need("payload", &Payload))
      return false;
    if (!Payload->isObject()) {
      Why = "\"payload\" must be an object";
      return false;
    }
    const support::JsonValue *Cps = Payload->find("checkpoints");
    const support::JsonValue *Margin = Payload->find("margin");
    if (!Payload->find("query") || !Payload->find("kind") || !Cps ||
        !Margin) {
      Why = "payload needs \"query\", \"kind\", \"checkpoints\" and "
            "\"margin\"";
      return false;
    }
    if (!Cps->isArray()) {
      Why = "\"checkpoints\" must be an array";
      return false;
    }
    for (const support::JsonValue &C : Cps->Items)
      if (!C.find("site") || !C.find("lo") || !C.find("hi")) {
        Why = "checkpoint entries need \"site\", \"lo\" and \"hi\"";
        return false;
      }
    if (!Margin->find("alpha") || !Margin->find("beta") ||
        !Margin->find("lo") || !Margin->find("certified")) {
      Why = "margin needs \"alpha\", \"beta\", \"lo\" and \"certified\"";
      return false;
    }
    return true;
  }
  if (Schema == "lease") {
    // Coordination lease file (support/Lease.h): owner identity plus the
    // heartbeat/created timestamps the staleness logic compares.
    const support::JsonValue *Owner = nullptr;
    if (!Need("deept_lease") || !Need("range") || !Need("ranges") ||
        !Need("owner", &Owner) || !Need("pid") || !Need("created_ms") ||
        !Need("heartbeat_ms"))
      return false;
    if (Owner->K != support::JsonValue::Kind::String) {
      Why = "\"owner\" must be a string";
      return false;
    }
    for (const char *Key : {"range", "ranges", "pid", "created_ms",
                            "heartbeat_ms"})
      if (Doc.find(Key)->K != support::JsonValue::Kind::Number) {
        Why = std::string("\"") + Key + "\" must be a number";
        return false;
      }
    return true;
  }
  Why = "unknown schema \"" + Schema +
        "\" (want profile, recorder, certificate or lease)";
  return false;
}

bool checkDoc(const char *Path, const std::string &Text,
              const std::string &RequiredKey, const std::string &Schema,
              size_t LineNo) {
  auto Complain = [&](const std::string &Msg) {
    if (LineNo)
      std::fprintf(stderr, "%s:%zu: %s\n", Path, LineNo, Msg.c_str());
    else
      std::fprintf(stderr, "%s: %s\n", Path, Msg.c_str());
    return false;
  };
  support::JsonValue Doc;
  std::string Err;
  if (!support::parseJson(Text, Doc, &Err))
    return Complain("invalid JSON: " + Err);
  if (!RequiredKey.empty() && !Doc.find(RequiredKey))
    return Complain("missing key \"" + RequiredKey + "\"");
  if (!Schema.empty()) {
    std::string Why;
    if (!checkSchema(Doc, Schema, Why))
      return Complain("schema " + Schema + ": " + Why);
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string RequiredKey;
  std::string Schema;
  bool Jsonl = false;
  int Checked = 0;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--require-key") == 0) {
      if (++I >= Argc) {
        std::fprintf(stderr, "error: --require-key needs an argument\n");
        return 2;
      }
      RequiredKey = Argv[I];
      continue;
    }
    if (std::strcmp(Argv[I], "--schema") == 0) {
      if (++I >= Argc) {
        std::fprintf(stderr, "error: --schema needs an argument\n");
        return 2;
      }
      Schema = Argv[I];
      continue;
    }
    if (std::strcmp(Argv[I], "--jsonl") == 0) {
      Jsonl = true;
      continue;
    }
    bool Stdin = std::strcmp(Argv[I], "-") == 0;
    const char *Name = Stdin ? "<stdin>" : Argv[I];
    std::ifstream File;
    if (!Stdin) {
      File.open(Argv[I], std::ios::binary);
      if (!File) {
        std::fprintf(stderr, "%s: cannot open\n", Argv[I]);
        return 1;
      }
    }
    std::istream &In = Stdin ? std::cin : File;
    if (Jsonl) {
      std::string Line;
      size_t LineNo = 0, Docs = 0;
      while (std::getline(In, Line)) {
        ++LineNo;
        if (Line.empty())
          continue;
        if (!checkDoc(Name, Line, RequiredKey, Schema, LineNo))
          return 1;
        ++Docs;
      }
      if (Docs == 0) {
        std::fprintf(stderr, "%s: no JSON documents (empty JSONL)\n", Name);
        return 1;
      }
      std::printf("%s: valid JSONL (%zu documents)\n", Name, Docs);
    } else {
      std::ostringstream Buf;
      Buf << In.rdbuf();
      std::string Text = Buf.str();
      if (!checkDoc(Name, Text, RequiredKey, Schema, 0))
        return 1;
      std::printf("%s: valid JSON (%zu bytes)\n", Name, Text.size());
    }
    ++Checked;
  }
  if (Checked == 0) {
    std::fprintf(stderr,
                 "usage: deept_json_validate [--jsonl] [--require-key KEY] "
                 "[--schema profile|recorder|certificate|lease] FILE|-...\n");
    return 2;
  }
  return 0;
}
