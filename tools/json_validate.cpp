//===- tools/json_validate.cpp - JSON well-formedness checker --*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
// Validates that each argument file parses as standard JSON (RFC 8259),
// using the same support/Json parser the tests use. The smoke tests run
// it over deept_cli's --trace-out / --stats-json artifacts, the bench
// BENCH_*.json reports, and the scheduler's JSONL result stores.
//
//   deept_json_validate FILE [FILE...]
//   deept_json_validate --require-key traceEvents FILE
//   deept_json_validate --jsonl --require-key key results.jsonl
//
// --require-key KEY additionally demands a top-level object member named
// KEY in every following file. --jsonl switches to line-delimited mode
// for the following files: every non-empty line must parse as one JSON
// document (and satisfy --require-key individually).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace deept;

namespace {

bool checkDoc(const char *Path, const std::string &Text,
              const std::string &RequiredKey, size_t LineNo) {
  support::JsonValue Doc;
  std::string Err;
  if (!support::parseJson(Text, Doc, &Err)) {
    if (LineNo)
      std::fprintf(stderr, "%s:%zu: invalid JSON: %s\n", Path, LineNo,
                   Err.c_str());
    else
      std::fprintf(stderr, "%s: invalid JSON: %s\n", Path, Err.c_str());
    return false;
  }
  if (!RequiredKey.empty() && !Doc.find(RequiredKey)) {
    if (LineNo)
      std::fprintf(stderr, "%s:%zu: missing key \"%s\"\n", Path, LineNo,
                   RequiredKey.c_str());
    else
      std::fprintf(stderr, "%s: missing top-level key \"%s\"\n", Path,
                   RequiredKey.c_str());
    return false;
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string RequiredKey;
  bool Jsonl = false;
  int Checked = 0;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--require-key") == 0) {
      if (++I >= Argc) {
        std::fprintf(stderr, "error: --require-key needs an argument\n");
        return 2;
      }
      RequiredKey = Argv[I];
      continue;
    }
    if (std::strcmp(Argv[I], "--jsonl") == 0) {
      Jsonl = true;
      continue;
    }
    std::ifstream In(Argv[I], std::ios::binary);
    if (!In) {
      std::fprintf(stderr, "%s: cannot open\n", Argv[I]);
      return 1;
    }
    if (Jsonl) {
      std::string Line;
      size_t LineNo = 0, Docs = 0;
      while (std::getline(In, Line)) {
        ++LineNo;
        if (Line.empty())
          continue;
        if (!checkDoc(Argv[I], Line, RequiredKey, LineNo))
          return 1;
        ++Docs;
      }
      if (Docs == 0) {
        std::fprintf(stderr, "%s: no JSON documents (empty JSONL)\n",
                     Argv[I]);
        return 1;
      }
      std::printf("%s: valid JSONL (%zu documents)\n", Argv[I], Docs);
    } else {
      std::ostringstream Buf;
      Buf << In.rdbuf();
      std::string Text = Buf.str();
      if (!checkDoc(Argv[I], Text, RequiredKey, 0))
        return 1;
      std::printf("%s: valid JSON (%zu bytes)\n", Argv[I], Text.size());
    }
    ++Checked;
  }
  if (Checked == 0) {
    std::fprintf(stderr, "usage: deept_json_validate [--jsonl] "
                         "[--require-key KEY] FILE...\n");
    return 2;
  }
  return 0;
}
