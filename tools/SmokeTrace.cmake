# SmokeTrace.cmake - end-to-end smoke test of the observability flags.
#
# Trains a tiny model with deept_cli, certifies one sentence with
# --trace-out and --stats-json, and validates both artifacts with
# deept_json_validate. Run via:
#   cmake -DDEEPT_CLI=... -DJSON_VALIDATE=... -DWORK_DIR=... -P SmokeTrace.cmake
#
# Pass -DTHREADS=N to run the certify step with --threads N (the
# parallel_smoke test drives the thread pool through the same harness).

foreach(Var DEEPT_CLI JSON_VALIDATE WORK_DIR)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "SmokeTrace.cmake needs -D${Var}=...")
  endif()
endforeach()

set(ThreadFlags)
if(DEFINED THREADS)
  set(ThreadFlags --threads "${THREADS}")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(Model "${WORK_DIR}/smoke.dptm")
set(TraceJson "${WORK_DIR}/smoke.trace.json")
set(StatsJson "${WORK_DIR}/smoke.stats.json")

execute_process(
  COMMAND "${DEEPT_CLI}" train --out "${Model}" --layers 1 --embed 8
          --heads 2 --hidden 8 --steps 5
  RESULT_VARIABLE Rc)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "deept_cli train failed (rc=${Rc})")
endif()

execute_process(
  COMMAND "${DEEPT_CLI}" certify --model "${Model}" --sentences 1
          --trace-out "${TraceJson}" --stats-json "${StatsJson}"
          ${ThreadFlags}
  RESULT_VARIABLE Rc)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "deept_cli certify failed (rc=${Rc})")
endif()

execute_process(
  COMMAND "${JSON_VALIDATE}" --require-key traceEvents "${TraceJson}"
  RESULT_VARIABLE Rc)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "trace JSON invalid (rc=${Rc})")
endif()

execute_process(
  COMMAND "${JSON_VALIDATE}" --require-key metrics "${StatsJson}"
  RESULT_VARIABLE Rc)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "stats JSON invalid (rc=${Rc})")
endif()

message(STATUS "observability smoke test passed")
