#!/usr/bin/env bash
# ci_local.sh - run the GitHub CI pipeline stages on a developer machine.
#
# Usage: tools/ci_local.sh [STAGE...]
#   Stages: tier1 tsan asan robustness artifacts observability simd
#           certificates coordination perf
#   (default: all ten, in order)
#
# Environment:
#   BUILD_TYPE   CMake build type for tier1/artifacts (default Release)
#   CC / CXX     compiler pair (default: whatever CMake picks)
#   JOBS         parallel build jobs (default: nproc)
#
# Mirrors .github/workflows/ci.yml: the tier-1 configure+ctest matrix
# cell, the TSan/ASan jobs, and the bench-artifact job. ccache is used
# when installed and skipped otherwise, so the script runs unchanged on
# boxes without it.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
BUILD_TYPE="${BUILD_TYPE:-Release}"
STAGES=("$@")
[ ${#STAGES[@]} -eq 0 ] && \
  STAGES=(tier1 tsan asan robustness artifacts observability simd
          certificates coordination perf)

CMAKE_COMMON=()
if command -v ccache >/dev/null 2>&1; then
  CMAKE_COMMON+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
  echo "== ccache enabled ($(ccache --version | head -n1)) =="
else
  echo "== ccache not installed; building without it =="
fi

# gtest suites exercising the code each sanitizer targets (kept in sync
# with ci.yml).
TSAN_FILTER='ParallelFor.*:TiledGemm.*:Determinism.*'
ASAN_FILTER='Zonotope.*:Elementwise.*:DotProduct.*:Softmax.*:Reduction.*'
ASAN_FILTER+=':Norms/NormParamTest.*:Verify.*:Norms/VerifyNormTest.*'
ASAN_FILTER+=':RadiusSearch*:FeedForwardVerifier.*:Scheduler.*'
ROBUSTNESS_FILTER='Fault.*:Serialize.*:Io.*:Error.*:Json.*'
ROBUSTNESS_FILTER+=':Scheduler.Recover*:Scheduler.Resume*:Scheduler.Fsync*'
SIMD_FILTER='KernelDispatch.*:KernelEquivalence.*:F32Soundness.*'
SIMD_FILTER+=':TiledGemm.*:Determinism.*:Refinement.*'

configure() { # dir, extra cmake args...
  local Dir="$1"; shift
  cmake -S "$ROOT" -B "$Dir" -DCMAKE_BUILD_TYPE="$BUILD_TYPE" \
        "${CMAKE_COMMON[@]}" "$@"
}

stage_tier1() {
  echo "== tier1: full build + ctest ($BUILD_TYPE) =="
  configure "$ROOT/build-ci/tier1"
  cmake --build "$ROOT/build-ci/tier1" -j "$JOBS"
  ctest --test-dir "$ROOT/build-ci/tier1" --output-on-failure -j "$JOBS"
}

stage_tsan() {
  echo "== tsan: parallel layer under ThreadSanitizer =="
  configure "$ROOT/build-ci/tsan" -DDEEPT_SANITIZE=thread
  cmake --build "$ROOT/build-ci/tsan" -j "$JOBS" \
        --target deept_tests deept_cli deept_json_validate
  "$ROOT/build-ci/tsan/tests/deept_tests" --gtest_filter="$TSAN_FILTER"
  ctest --test-dir "$ROOT/build-ci/tsan" -R parallel_smoke \
        --output-on-failure
}

stage_asan() {
  echo "== asan: zonotope/verifier layers under AddressSanitizer =="
  configure "$ROOT/build-ci/asan" -DDEEPT_SANITIZE=address
  cmake --build "$ROOT/build-ci/asan" -j "$JOBS" --target deept_tests
  "$ROOT/build-ci/asan/tests/deept_tests" --gtest_filter="$ASAN_FILTER"
}

stage_robustness() {
  echo "== robustness: fault injection + corrupt corpus under ASan =="
  configure "$ROOT/build-ci/asan" -DDEEPT_SANITIZE=address \
            -DDEEPT_FAULT_INJECT=ON
  cmake --build "$ROOT/build-ci/asan" -j "$JOBS" \
        --target deept_tests deept_cli deept_json_validate
  "$ROOT/build-ci/asan/tests/deept_tests" \
      --gtest_filter="$ROBUSTNESS_FILTER"
  ctest --test-dir "$ROOT/build-ci/asan" -R robustness_smoke \
        --output-on-failure
}

stage_artifacts() {
  echo "== artifacts: scheduler-driven bench + JSONL validation =="
  configure "$ROOT/build-ci/tier1"
  cmake --build "$ROOT/build-ci/tier1" -j "$JOBS" \
        --target table1_sst_fast_vs_baf deept_cli deept_json_validate
  local Out="$ROOT/build-ci/artifacts"
  mkdir -p "$Out"
  # The tracked model cache makes this a pure-certification run (no
  # training in CI).
  ( cd "$Out" && DEEPT_MODEL_CACHE="$ROOT/deept-model-cache" \
      "$ROOT/build-ci/tier1/bench/table1_sst_fast_vs_baf" )
  "$ROOT/build-ci/tier1/tools/deept_json_validate" --require-key bench \
      "$Out"/BENCH_*.json

  cat > "$Out/jobs.json" <<'EOF'
{"jobs":[
  {"id":"fixed","seed":3,"word":0,"norm":"l2","eps":0.02,"method":"fast"},
  {"id":"search","seed":4,"word":0,"norm":"l1","eps":0.05,"search":true,
   "method":"fast"},
  {"id":"expire","seed":3,"word":0,"method":"precise","deadline_ms":0},
  {"id":"badword","seed":5,"word":99,"method":"fast"}
]}
EOF
  rm -f "$Out/results.jsonl"
  DEEPT_MODEL_CACHE="$ROOT/deept-model-cache" \
    "$ROOT/build-ci/tier1/tools/deept_cli" batch \
      --model "$ROOT/deept-model-cache/sst_m3.dptm" \
      --jobs "$Out/jobs.json" --out "$Out/results.jsonl"
  DEEPT_MODEL_CACHE="$ROOT/deept-model-cache" \
    "$ROOT/build-ci/tier1/tools/deept_cli" batch \
      --model "$ROOT/deept-model-cache/sst_m3.dptm" \
      --jobs "$Out/jobs.json" --out "$Out/results.jsonl" --resume
  "$ROOT/build-ci/tier1/tools/deept_json_validate" --jsonl \
      --require-key key "$Out/results.jsonl"
  echo "artifacts in $Out"
}

stage_observability() {
  echo "== observability: profiles, flight recorder, Prometheus export =="
  configure "$ROOT/build-ci/tier1"
  cmake --build "$ROOT/build-ci/tier1" -j "$JOBS" \
        --target deept_cli deept_json_validate
  local Cli="$ROOT/build-ci/tier1/tools/deept_cli"
  local Validate="$ROOT/build-ci/tier1/tools/deept_json_validate"
  local Out="$ROOT/build-ci/observability"
  mkdir -p "$Out"

  # A falsified fixed-eps certification (eps 5 is far past the radius of
  # the cached model) must stream a precision profile whose attribution
  # decomposes the margin width.
  rm -f "$Out/profiles.jsonl"
  DEEPT_MODEL_CACHE="$ROOT/deept-model-cache" \
    "$Cli" certify --model "$ROOT/deept-model-cache/sst_m12.dptm" \
      --sentences 1 --eps 5 --profile-out "$Out/profiles.jsonl" \
      --stats-json "$Out/stats.json"
  "$Validate" --jsonl --schema profile "$Out/profiles.jsonl"
  # The validator also reads stdin ("-"), the shape a scrape pipe uses.
  "$Validate" --jsonl --schema profile - < "$Out/profiles.jsonl"
  grep -q '"falsified":true' "$Out/profiles.jsonl" || {
    echo "observability: expected a falsified profile at eps 5" >&2
    exit 1
  }

  # A batch with one clean job and one forced deadline expiry: the
  # expired job must leave a schema-valid flight-recorder artifact, the
  # clean one must not.
  cat > "$Out/jobs.json" <<'EOF'
{"jobs":[
  {"id":"ok","seed":3,"word":0,"norm":"l2","eps":0.02,"method":"fast"},
  {"id":"expire","seed":3,"word":0,"method":"precise","deadline_ms":0}
]}
EOF
  rm -rf "$Out/recorder" "$Out/results.jsonl" "$Out/batch_profiles.jsonl"
  mkdir -p "$Out/recorder"
  DEEPT_MODEL_CACHE="$ROOT/deept-model-cache" \
    "$Cli" batch --model "$ROOT/deept-model-cache/sst_m3.dptm" \
      --jobs "$Out/jobs.json" --out "$Out/results.jsonl" \
      --profile-out "$Out/batch_profiles.jsonl" \
      --recorder-dir "$Out/recorder"
  "$Validate" --schema recorder "$Out/recorder/recorder-expire.json"
  [ ! -e "$Out/recorder/recorder-ok.json" ] || {
    echo "observability: clean job must not leave a recorder dump" >&2
    exit 1
  }
  "$Validate" --jsonl --schema profile "$Out/batch_profiles.jsonl"
  "$Validate" --jsonl --require-key key "$Out/results.jsonl"

  # The saved stats document re-exports as Prometheus text.
  DEEPT_MODEL_CACHE="$ROOT/deept-model-cache" \
    "$Cli" metrics --from "$Out/stats.json" > "$Out/metrics.prom"
  grep -q '^deept_profile_queries ' "$Out/metrics.prom"
  grep -q '^# TYPE deept_profile_margin_width summary$' "$Out/metrics.prom"
  echo "observability artifacts in $Out"
}

stage_simd() {
  echo "== simd: kernel equivalence across ISAs + sound f32 mode =="
  configure "$ROOT/build-ci/tier1"
  cmake --build "$ROOT/build-ci/tier1" -j "$JOBS" \
        --target deept_tests table1_sst_fast_vs_baf
  # The equivalence/dispatch suite under the scalar table and under the
  # widest table the host supports (DEEPT_ISA=native resolves to it).
  DEEPT_ISA=scalar "$ROOT/build-ci/tier1/tests/deept_tests" \
      --gtest_filter="$SIMD_FILTER"
  DEEPT_ISA=native "$ROOT/build-ci/tier1/tests/deept_tests" \
      --gtest_filter="$SIMD_FILTER"
  # The f32 soundness oracle under ASan: the narrowed accumulators and
  # their upward lifts must be memory-clean too.
  configure "$ROOT/build-ci/asan" -DDEEPT_SANITIZE=address
  cmake --build "$ROOT/build-ci/asan" -j "$JOBS" --target deept_tests
  "$ROOT/build-ci/asan/tests/deept_tests" --gtest_filter='F32Soundness.*'
  # The whole-plane fused coefficient oracle under ASan, dispatched from
  # the scalar and from the widest table the host supports: the packed
  # shared-panel scratch, the hoisted zero flags and the paired-row loops
  # must be memory-clean and 0-ULP equal to the per-plane composition.
  local FusedFilter='KernelEquivalence.DotPlanesFused*'
  FusedFilter+=':KernelEquivalence.DotRows*:KernelEquivalence.RowScale*'
  DEEPT_ISA=scalar "$ROOT/build-ci/asan/tests/deept_tests" \
      --gtest_filter="$FusedFilter"
  DEEPT_ISA=native "$ROOT/build-ci/asan/tests/deept_tests" \
      --gtest_filter="$FusedFilter"
  # Bench artifacts must record the ISA they ran under, so cross-ISA
  # comparisons fail loudly in bench_compare instead of lying quietly.
  local Out="$ROOT/build-ci/simd"
  mkdir -p "$Out"
  ( cd "$Out" && DEEPT_MODEL_CACHE="$ROOT/deept-model-cache" \
      "$ROOT/build-ci/tier1/bench/table1_sst_fast_vs_baf" )
  grep -q '"isa":"' "$Out/BENCH_table1_sst_fast_vs_baf.json" || {
    echo "simd: bench artifact missing its isa tag" >&2
    exit 1
  }
  echo "simd artifacts in $Out"
}

stage_certificates() {
  echo "== certificates: replayable proofs + independent checker oracle =="
  # The producer (deept_cli) comes from the tier-1 build; the checker
  # (deept_check) is built under ASan so replaying every artifact doubles
  # as a memory-safety drill on the independent interval core.
  configure "$ROOT/build-ci/tier1"
  cmake --build "$ROOT/build-ci/tier1" -j "$JOBS" \
        --target deept_cli deept_json_validate
  configure "$ROOT/build-ci/asan" -DDEEPT_SANITIZE=address
  cmake --build "$ROOT/build-ci/asan" -j "$JOBS" --target deept_check
  local Cli="$ROOT/build-ci/tier1/tools/deept_cli"
  local Check="$ROOT/build-ci/asan/tools/deept_check"
  local Validate="$ROOT/build-ci/tier1/tools/deept_json_validate"
  local Out="$ROOT/build-ci/certificates"
  mkdir -p "$Out"

  # Certify the cached 12-layer model at 1 and 8 threads under the scalar
  # kernel table and the widest one the host supports; every emitted
  # certificate must pass schema validation and replay through the
  # checker, and every query must actually certify (the stage is a
  # soundness oracle, not just a format check).
  local Isa Threads
  for Isa in scalar native; do
    for Threads in 1 8; do
      rm -f "$Out/certs-$Isa-t$Threads.jsonl"
      DEEPT_MODEL_CACHE="$ROOT/deept-model-cache" DEEPT_ISA="$Isa" \
        "$Cli" certify --model "$ROOT/deept-model-cache/sst_m12.dptm" \
          --sentences 2 --eps 0.01 --threads "$Threads" \
          --cert-out "$Out/certs-$Isa-t$Threads.jsonl"
      "$Validate" --jsonl --schema certificate \
          "$Out/certs-$Isa-t$Threads.jsonl"
      "$Check" "$Out/certs-$Isa-t$Threads.jsonl"
      if grep -q '"certified":false' "$Out/certs-$Isa-t$Threads.jsonl"; then
        echo "certificates: uncertified query in certs-$Isa-t$Threads" >&2
        exit 1
      fi
    done
    # Within one ISA the payload -- and hence its CRC -- must be
    # bit-identical at any thread count. Only the envelope's "threads"
    # field may differ, so the comparison reads the crc32 stream, not the
    # whole file.
    grep -o '"crc32":[0-9]*' "$Out/certs-$Isa-t1.jsonl" \
        > "$Out/crc-$Isa-t1.txt"
    grep -o '"crc32":[0-9]*' "$Out/certs-$Isa-t8.jsonl" \
        > "$Out/crc-$Isa-t8.txt"
    cmp "$Out/crc-$Isa-t1.txt" "$Out/crc-$Isa-t8.txt" || {
      echo "certificates: payload CRCs differ across thread counts" \
           "under DEEPT_ISA=$Isa" >&2
      exit 1
    }
  done
  # Across ISAs the raw payloads may differ (lane-ordered reductions) but
  # the checker's semantic digest -- bookkeeping, shapes, verdicts --
  # must not.
  "$Check" --digest "$Out/certs-scalar-t1.jsonl" > "$Out/digest-scalar.txt"
  "$Check" --digest "$Out/certs-native-t1.jsonl" > "$Out/digest-native.txt"
  diff -u "$Out/digest-scalar.txt" "$Out/digest-native.txt" || {
    echo "certificates: semantic digests differ across ISAs" >&2
    exit 1
  }
  # One l-infinity run for norm coverage of the margin replay (q = 1).
  rm -f "$Out/certs-linf.jsonl"
  DEEPT_MODEL_CACHE="$ROOT/deept-model-cache" \
    "$Cli" certify --model "$ROOT/deept-model-cache/sst_m12.dptm" \
      --sentences 1 --eps 0.002 --norm linf --threads 2 \
      --cert-out "$Out/certs-linf.jsonl"
  "$Check" "$Out/certs-linf.jsonl"
  echo "certificate artifacts in $Out"
}

stage_coordination() {
  echo "== coordination: kill -9 chaos drill, 3 workers under ASan =="
  # The lease/retry unit drills plus the headline chaos drill: three
  # worker processes drain one cached-model batch, one is SIGKILLed
  # mid-run, and the survivors must converge to a merged store whose
  # margins are bit-identical to a serial single-worker run.
  configure "$ROOT/build-ci/asan" -DDEEPT_SANITIZE=address \
            -DDEEPT_FAULT_INJECT=ON
  cmake --build "$ROOT/build-ci/asan" -j "$JOBS" \
        --target deept_tests deept_cli deept_json_validate
  "$ROOT/build-ci/asan/tests/deept_tests" \
      --gtest_filter='Lease.*:Coordination.*:Scheduler.Transient*:Scheduler.Retry*:Scheduler.Permanent*:Scheduler.OutOfMemory*:Scheduler.Abort*:Scheduler.RecordCrc*:Scheduler.ResumeReRunsOnlyCrc*'
  local Cli="$ROOT/build-ci/asan/tools/deept_cli"
  local Validate="$ROOT/build-ci/asan/tools/deept_json_validate"
  local Out="$ROOT/build-ci/coordination"
  rm -rf "$Out"
  mkdir -p "$Out"

  # Six deterministic fixed-eps jobs on the cached 12-layer model: no
  # deadlines, nothing timing dependent, so every semantic field of
  # every record is reproducible across workers.
  cat > "$Out/jobs.json" <<'EOF'
{"jobs":[
  {"id":"j0","seed":3,"word":0,"norm":"l2","eps":0.005,"method":"fast"},
  {"id":"j1","seed":4,"word":0,"norm":"l2","eps":0.005,"method":"fast"},
  {"id":"j2","seed":5,"word":0,"norm":"l2","eps":0.005,"method":"fast"},
  {"id":"j3","seed":6,"word":0,"norm":"linf","eps":0.001,"method":"fast"},
  {"id":"j4","seed":7,"word":0,"norm":"l1","eps":0.01,"method":"fast"},
  {"id":"j5","seed":8,"word":0,"norm":"l2","eps":0.01,"method":"fast"}
]}
EOF
  local Model="$ROOT/deept-model-cache/sst_m12.dptm"

  # Serial reference (no fault env: only the workers get stretched).
  DEEPT_MODEL_CACHE="$ROOT/deept-model-cache" \
    "$Cli" batch --model "$Model" --jobs "$Out/jobs.json" \
      --out "$Out/serial.jsonl"

  # Three workers race over six ranges. sched.execute:0:delay:300
  # stretches every job by 300ms so the SIGKILL below reliably lands
  # while the victim holds a lease mid-range.
  local Pids=() K
  for K in 1 2 3; do
    DEEPT_MODEL_CACHE="$ROOT/deept-model-cache" \
      DEEPT_FAULTS=sched.execute:0:delay:300 \
      "$Cli" work --model "$Model" --jobs "$Out/jobs.json" \
        --lease-dir "$Out/leases" --ranges 6 --worker-id "w$K" \
        --heartbeat-ms 100 --stale-ms 1000 \
        > "$Out/worker-$K.log" 2>&1 &
    Pids[$K]=$!
  done

  # Snapshot a live lease for schema validation while the drill runs.
  local Snapshot="" Lease Tries=0
  while [ -z "$Snapshot" ] && [ "$Tries" -lt 50 ]; do
    for Lease in "$Out"/leases/range-*.lease; do
      [ -e "$Lease" ] || continue
      cp "$Lease" "$Out/lease-snapshot.json" 2>/dev/null || continue
      Snapshot="$Out/lease-snapshot.json"
      break
    done
    Tries=$((Tries + 1))
    sleep 0.1
  done
  [ -n "$Snapshot" ] || {
    echo "coordination: no lease file appeared to snapshot" >&2
    exit 1
  }
  "$Validate" --schema lease "$Snapshot"

  # The headline drill: SIGKILL worker 2 mid-batch. No cleanup handler
  # runs -- its lease goes stale and a survivor reclaims it.
  sleep 1
  kill -9 "${Pids[2]}" 2>/dev/null || true
  wait "${Pids[2]}" 2>/dev/null || true
  local Rc=0
  wait "${Pids[1]}" || Rc=$?
  [ "$Rc" -eq 0 ] || {
    echo "coordination: worker 1 failed (rc=$Rc)" >&2
    cat "$Out/worker-1.log" >&2
    exit 1
  }
  wait "${Pids[3]}" || Rc=$?
  [ "$Rc" -eq 0 ] || {
    echo "coordination: worker 3 failed (rc=$Rc)" >&2
    cat "$Out/worker-3.log" >&2
    exit 1
  }

  # Convergence: every range published its done marker.
  local Range
  for Range in 0 1 2 3 4 5; do
    [ -e "$Out/leases/range-$Range.done" ] || {
      echo "coordination: range $Range never completed" >&2
      cat "$Out"/worker-*.log >&2
      exit 1
    }
  done

  # Merge the shards and hold the result against the serial run: same
  # keys, and bit-identical status/margin/certified per key (timing
  # fields and the per-record CRC legitimately differ).
  "$Cli" merge --lease-dir "$Out/leases" --out "$Out/merged.jsonl"
  "$Validate" --jsonl --require-key key "$Out/merged.jsonl"
  python3 - "$Out/serial.jsonl" "$Out/merged.jsonl" <<'EOF'
import json, sys

def semantics(path):
    out = {}
    for line in open(path):
        line = line.strip()
        if not line:
            continue
        r = json.loads(line)
        out[r["key"]] = (r["status"], r.get("margin"), r.get("certified"),
                         r.get("radius"), r.get("error_code"))
    return out

serial, merged = semantics(sys.argv[1]), semantics(sys.argv[2])
missing = set(serial) ^ set(merged)
assert not missing, f"lost/extra records: {missing}"
diff = {k: (serial[k], merged[k]) for k in serial if serial[k] != merged[k]}
assert not diff, f"semantic fields differ: {diff}"
print(f"coordination: {len(merged)} records bit-identical to serial")
EOF
  echo "coordination artifacts in $Out"
}

stage_perf() {
  echo "== perf: bench regression gate vs bench/baselines (scalar ISA) =="
  for Baseline in BENCH_micro_ops.json BENCH_table1_sst_fast_vs_baf.json; do
    [ -f "$ROOT/bench/baselines/$Baseline" ] || {
      echo "perf: missing baseline bench/baselines/$Baseline;" \
           "regenerate it per bench/baselines/README.md" >&2
      exit 1
    }
  done
  configure "$ROOT/build-ci/tier1"
  cmake --build "$ROOT/build-ci/tier1" -j "$JOBS" \
        --target micro_ops table1_sst_fast_vs_baf
  local Out="$ROOT/build-ci/perf"
  mkdir -p "$Out"
  # The committed baselines were recorded under the scalar kernel table;
  # pinning DEEPT_ISA keeps the comparison apples-to-apples on any runner
  # regardless of its vector width (see bench/baselines/README.md).
  DEEPT_ISA=scalar "$ROOT/build-ci/tier1/bench/micro_ops" \
      --benchmark_repetitions=3 \
      --benchmark_out="$Out/BENCH_micro_ops.json" \
      --benchmark_out_format=json
  ( cd "$Out" && DEEPT_MODEL_CACHE="$ROOT/deept-model-cache" \
      DEEPT_ISA=scalar \
      "$ROOT/build-ci/tier1/bench/table1_sst_fast_vs_baf" )
  # Sub-microsecond timers (micro_ops reports ns) and sub-half-second
  # table cells are noise-dominated; the floors exclude them.
  python3 "$ROOT/tools/bench_compare.py" \
      "$ROOT/bench/baselines/BENCH_micro_ops.json" \
      "$Out/BENCH_micro_ops.json" --min-time 1000
  python3 "$ROOT/tools/bench_compare.py" \
      "$ROOT/bench/baselines/BENCH_table1_sst_fast_vs_baf.json" \
      "$Out/BENCH_table1_sst_fast_vs_baf.json" --min-time 0.5
}

for Stage in "${STAGES[@]}"; do
  case "$Stage" in
    tier1) stage_tier1 ;;
    tsan) stage_tsan ;;
    asan) stage_asan ;;
    robustness) stage_robustness ;;
    artifacts) stage_artifacts ;;
    observability) stage_observability ;;
    simd) stage_simd ;;
    certificates) stage_certificates ;;
    coordination) stage_coordination ;;
    perf) stage_perf ;;
    *) echo "unknown stage '$Stage'" \
            "(want tier1 tsan asan robustness artifacts observability" \
            "simd certificates coordination perf)" >&2
       exit 2 ;;
  esac
done
echo "== ci_local: all stages passed =="
