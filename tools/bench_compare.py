#!/usr/bin/env python3
"""Compare benchmark reports against a committed baseline.

Usage: bench_compare.py BASELINE.json CURRENT.json [--threshold 0.15]
                        [--min-time SECONDS]

Two input formats are recognised:

* google-benchmark JSON (``--benchmark_out``): entries are keyed by the
  benchmark ``name``. Repetition rows are collected and reduced to their
  median ``real_time``; pre-aggregated rows (``run_type == "aggregate"``)
  are ignored so the median is recomputed uniformly on both sides.

* deept bench table JSON (``bench/Common.h`` ``writeBenchJson``): every
  column whose header contains ``t[s]`` is a time metric; a row is keyed
  by its remaining cells, so reordering rows does not break the match.

A metric regresses when ``current > baseline * (1 + threshold)``; any
regression fails the run (exit 1). Metrics present on only one side are
reported but never fail, so adding or retiring benchmarks does not need
a lockstep baseline update. ``--min-time`` skips metrics whose baseline
value is below the floor (sub-millisecond timers are dominated by noise).

Baselines live in bench/baselines/ and record the machine they came
from; regenerate them (see bench/baselines/README.md) when hardware or
intentional performance changes make them stale.
"""

import argparse
import json
import os
import statistics
import sys


def load_doc(path):
    """Loads a report, failing loudly (no traceback) when it is absent."""
    if not os.path.exists(path):
        sys.exit(
            "bench_compare: baseline/report not found: %s\n"
            "  Committed baselines live in bench/baselines/; see "
            "bench/baselines/README.md for how to regenerate them." % path
        )
    with open(path, "r", encoding="utf-8") as fh:
        try:
            return json.load(fh)
        except ValueError as err:
            sys.exit("bench_compare: %s is not valid JSON: %s" % (path, err))


def load_metrics(doc, path):
    """Returns {metric name: median time} for either input format."""
    samples = {}
    if "benchmarks" in doc:
        for entry in doc["benchmarks"]:
            if entry.get("run_type") == "aggregate":
                continue
            name = entry.get("name")
            time = entry.get("real_time")
            if name is None or time is None:
                continue
            samples.setdefault(name, []).append(float(time))
    elif "columns" in doc:
        cols = doc.get("columns", [])
        time_idx = [i for i, c in enumerate(cols) if "t[s]" in c]
        key_idx = [i for i in range(len(cols)) if i not in time_idx]
        prefix = doc.get("bench", "table")
        for row in doc.get("rows", []):
            key = "/".join(str(row[i]) for i in key_idx if i < len(row))
            for i in time_idx:
                if i >= len(row):
                    continue
                try:
                    val = float(row[i])
                except (TypeError, ValueError):
                    continue
                name = "%s/%s/%s" % (prefix, key, cols[i])
                samples.setdefault(name, []).append(val)
    else:
        raise ValueError(
            "%s: neither a google-benchmark report nor a bench table" % path
        )
    return {name: statistics.median(vals) for name, vals in samples.items()}


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="allowed fractional slowdown before failing (default 0.15)",
    )
    ap.add_argument(
        "--min-time",
        type=float,
        default=0.0,
        help="ignore metrics whose baseline value is below this floor",
    )
    ap.add_argument(
        "--allow-isa-mismatch",
        action="store_true",
        help="compare reports recorded under different SIMD ISAs anyway "
        "(timings are only meaningful within an ISA)",
    )
    args = ap.parse_args(argv)

    base_doc = load_doc(args.baseline)
    cur_doc = load_doc(args.current)

    # Bench-table reports record the kernel ISA they ran under; a
    # cross-ISA comparison silently measures the dispatcher, not the
    # change under test, so refuse it unless explicitly overridden.
    def doc_isa(doc):
        # Table harnesses record a top-level "isa"; google-benchmark
        # reports carry it in the custom context.
        return doc.get("isa") or (doc.get("context") or {}).get("isa")

    base_isa = doc_isa(base_doc)
    cur_isa = doc_isa(cur_doc)
    if base_isa and cur_isa and base_isa != cur_isa:
        msg = (
            "bench_compare: ISA mismatch: baseline %s was recorded under "
            "'%s' but %s under '%s'; regenerate the baseline under the "
            "same ISA (see bench/baselines/README.md) or pass "
            "--allow-isa-mismatch." % (args.baseline, base_isa,
                                       args.current, cur_isa)
        )
        if not args.allow_isa_mismatch:
            sys.exit(msg)
        print(msg.replace("bench_compare:", "bench_compare: warning:"))

    base = load_metrics(base_doc, args.baseline)
    cur = load_metrics(cur_doc, args.current)

    regressions = []
    compared = 0
    for name in sorted(base):
        if name not in cur:
            print("  [gone]     %s" % name)
            continue
        if base[name] < args.min_time or base[name] <= 0.0:
            continue
        compared += 1
        ratio = cur[name] / base[name]
        tag = "ok"
        if ratio > 1.0 + args.threshold:
            tag = "REGRESSED"
            regressions.append((name, ratio))
        elif ratio < 1.0 - args.threshold:
            tag = "improved"
        print(
            "  [%-9s] %s: %.6g -> %.6g (%+.1f%%)"
            % (tag, name, base[name], cur[name], 100.0 * (ratio - 1.0))
        )
    for name in sorted(set(cur) - set(base)):
        print("  [new]      %s" % name)

    if not compared:
        print("bench_compare: no overlapping metrics between %s and %s"
              % (args.baseline, args.current))
        return 1
    if regressions:
        print(
            "bench_compare: %d metric(s) regressed beyond %.0f%%:"
            % (len(regressions), 100.0 * args.threshold)
        )
        for name, ratio in regressions:
            print("  %s: %.1f%% slower" % (name, 100.0 * (ratio - 1.0)))
        return 1
    print(
        "bench_compare: %d metric(s) within %.0f%% of baseline"
        % (compared, 100.0 * args.threshold)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
