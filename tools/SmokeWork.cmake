# SmokeWork.cmake - end-to-end smoke test of multi-worker coordination.
#
# Trains a tiny model, runs the batch serially as the reference, then
# drains the same jobs with two forked workers over a shared lease
# directory and checks the merged store matches the serial margins
# bit-for-bit. A second round kills a worker at the `worker.crash` fault
# point (held lease, no done marker), validates the abandoned lease file
# against the `lease` schema, and lets a survivor reclaim and finish the
# batch. Finishes with a retried transient fault through `batch
# --max-retries` and strict-flag rejection checks. Run via:
#   cmake -DDEEPT_CLI=... -DJSON_VALIDATE=... -DWORK_DIR=... -P SmokeWork.cmake

foreach(Var DEEPT_CLI JSON_VALIDATE WORK_DIR)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "SmokeWork.cmake needs -D${Var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(Model "${WORK_DIR}/work.dptm")
set(Jobs "${WORK_DIR}/jobs.json")
set(Serial "${WORK_DIR}/serial.jsonl")

execute_process(
  COMMAND "${DEEPT_CLI}" train --out "${Model}" --layers 1 --embed 8
          --heads 2 --hidden 8 --steps 5
  RESULT_VARIABLE Rc)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "deept_cli train failed (rc=${Rc})")
endif()

# Deterministic fixed-eps jobs only: no deadlines, nothing timing
# dependent, so every record's semantic fields are reproducible.
file(WRITE "${Jobs}" [=[
{"jobs":[
  {"id":"a","seed":3,"word":0,"norm":"l2","eps":0.02,"method":"fast"},
  {"id":"b","seed":4,"word":0,"norm":"l2","eps":0.05,"method":"fast"},
  {"id":"c","seed":5,"word":0,"norm":"linf","eps":0.01,"method":"fast"},
  {"id":"d","seed":3,"word":0,"norm":"l2","eps":0.05,"method":"precise"},
  {"id":"e","seed":4,"word":0,"norm":"l1","eps":0.05,"method":"combined"}
]}
]=])

# key -> margin map of a results JSONL, as a sorted list of key=margin
# strings. Margins are printed deterministically, so exact string
# comparison IS the bit-identity check; timing fields (seconds,
# queue_ms) and the per-record CRC legitimately differ between runs.
function(margins_of File OutVar)
  file(STRINGS "${File}" Lines)
  set(Pairs "")
  foreach(Line IN LISTS Lines)
    string(REGEX MATCH "\"key\":\"([^\"]*)\"" _ "${Line}")
    set(Key "${CMAKE_MATCH_1}")
    string(REGEX MATCH "\"margin\":([^,}]*)" _ "${Line}")
    set(Margin "${CMAKE_MATCH_1}")
    if(Key STREQUAL "" OR Margin STREQUAL "")
      message(FATAL_ERROR "${File}: record without key/margin: ${Line}")
    endif()
    list(APPEND Pairs "${Key}=${Margin}")
  endforeach()
  list(SORT Pairs)
  set(${OutVar} "${Pairs}" PARENT_SCOPE)
endfunction()

# --- Serial reference --------------------------------------------------

execute_process(
  COMMAND "${DEEPT_CLI}" batch --model "${Model}" --jobs "${Jobs}"
          --out "${Serial}"
  RESULT_VARIABLE Rc OUTPUT_VARIABLE Out ERROR_VARIABLE ErrOut)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "serial batch failed (rc=${Rc}): ${ErrOut}")
endif()
if(NOT Out MATCHES "5 jobs \\(5 ok, 0 degraded, 0 error, 0 skipped\\)")
  message(FATAL_ERROR "unexpected serial summary: ${Out}")
endif()
margins_of("${Serial}" SerialMargins)

# --- Two workers drain the batch ---------------------------------------

set(Leases "${WORK_DIR}/leases")
set(Merged "${WORK_DIR}/merged.jsonl")
execute_process(
  COMMAND "${DEEPT_CLI}" work --model "${Model}" --jobs "${Jobs}"
          --lease-dir "${Leases}" --ranges 3 --workers 2
          --heartbeat-ms 100 --out "${Merged}"
  RESULT_VARIABLE Rc OUTPUT_VARIABLE Out ERROR_VARIABLE ErrOut)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "work --workers 2 failed (rc=${Rc}): ${ErrOut}")
endif()
if(NOT Out MATCHES "merge: 5 records from 3 shards")
  message(FATAL_ERROR "unexpected merge summary: ${Out}")
endif()
execute_process(
  COMMAND "${JSON_VALIDATE}" --jsonl --require-key key "${Merged}"
  RESULT_VARIABLE Rc)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "merged store JSONL invalid (rc=${Rc})")
endif()
margins_of("${Merged}" WorkMargins)
if(NOT WorkMargins STREQUAL SerialMargins)
  message(FATAL_ERROR "two-worker margins differ from serial:\n"
                      "  serial: ${SerialMargins}\n  merged: ${WorkMargins}")
endif()

# --- Crash drill: kill a worker, survivor reclaims ---------------------

set(Leases2 "${WORK_DIR}/leases_crash")
set(Merged2 "${WORK_DIR}/merged_crash.jsonl")
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env DEEPT_FAULTS=worker.crash:1:fail
          "${DEEPT_CLI}" work --model "${Model}" --jobs "${Jobs}"
          --lease-dir "${Leases2}" --ranges 3 --worker-id crashy
          --heartbeat-ms 100
  RESULT_VARIABLE Rc OUTPUT_QUIET ERROR_QUIET)
if(Rc EQUAL 0)
  message(FATAL_ERROR "injected worker crash did not fail the worker")
endif()

# The dead worker left its lease behind; it must satisfy the lease
# schema (owner identity and the timestamps staleness compares).
file(GLOB Leftover "${Leases2}/range-*.lease")
list(LENGTH Leftover LeftoverCount)
if(NOT LeftoverCount EQUAL 1)
  message(FATAL_ERROR "expected 1 abandoned lease, found: ${Leftover}")
endif()
execute_process(
  COMMAND "${JSON_VALIDATE}" --schema lease ${Leftover}
  RESULT_VARIABLE Rc)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "abandoned lease fails schema validation (rc=${Rc})")
endif()
file(GLOB Markers "${Leases2}/range-*.done")
if(Markers)
  message(FATAL_ERROR "crashed worker published a done marker: ${Markers}")
endif()

execute_process(
  COMMAND "${DEEPT_CLI}" work --model "${Model}" --jobs "${Jobs}"
          --lease-dir "${Leases2}" --ranges 3 --worker-id survivor
          --heartbeat-ms 50 --stale-ms 1 --out "${Merged2}"
  RESULT_VARIABLE Rc OUTPUT_VARIABLE Out ERROR_VARIABLE ErrOut)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "survivor worker failed (rc=${Rc}): ${ErrOut}")
endif()
if(NOT Out MATCHES "3 ranges completed, 1 leases reclaimed")
  message(FATAL_ERROR "survivor did not reclaim the stale lease: ${Out}")
endif()
margins_of("${Merged2}" CrashMargins)
if(NOT CrashMargins STREQUAL SerialMargins)
  message(FATAL_ERROR "post-crash margins differ from serial:\n"
                      "  serial: ${SerialMargins}\n  merged: ${CrashMargins}")
endif()

# --- Transient retry through the batch surface -------------------------

set(Retried "${WORK_DIR}/retried.jsonl")
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env DEEPT_FAULTS=sched.execute:1:fail
          "${DEEPT_CLI}" batch --model "${Model}" --jobs "${Jobs}"
          --out "${Retried}" --max-retries 2
  RESULT_VARIABLE Rc OUTPUT_VARIABLE Out ERROR_VARIABLE ErrOut)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "batch --max-retries failed (rc=${Rc}): ${ErrOut}")
endif()
if(NOT Out MATCHES "5 jobs \\(5 ok, 0 degraded, 0 error, 0 skipped\\)")
  message(FATAL_ERROR "retried batch summary wrong: ${Out}")
endif()
if(NOT Out MATCHES "health: .* 1 retries")
  message(FATAL_ERROR "health line missing the retry count: ${Out}")
endif()

# --- Strict flag parsing ----------------------------------------------

foreach(BadFlag "--heartbeat-ms" "--workers" "--max-retries" "--ranges")
  execute_process(
    COMMAND "${DEEPT_CLI}" work --model "${Model}" --jobs "${Jobs}"
            --lease-dir "${WORK_DIR}/leases_bad" ${BadFlag} nonsense
    RESULT_VARIABLE Rc ERROR_VARIABLE ErrOut OUTPUT_QUIET)
  if(Rc EQUAL 0)
    message(FATAL_ERROR "work accepted ${BadFlag} nonsense")
  endif()
  if(NOT ErrOut MATCHES "expects an integer")
    message(FATAL_ERROR "missing strict-parse error for ${BadFlag}: ${ErrOut}")
  endif()
endforeach()

message(STATUS "multi-worker coordination smoke test passed")
